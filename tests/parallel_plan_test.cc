// Exchange-parallel planning (Section 4.10): the planner's partitioned
// plan shapes -- parallel sort, parallel aggregation over co-located
// groups, co-partitioned parallel merge join -- validated row for row
// against the single-threaded oracle plans, with OvcStreamChecker
// verifying the merged output stream and per-worker counters rolling up
// exactly.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "plan/plan_executor.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using plan::BufferSource;
using plan::ExecutionResult;
using plan::LogicalNode;
using plan::PhysicalAlg;
using plan::PhysicalPlan;
using plan::PlanBuilder;
using plan::PlanExecutor;
using plan::Planner;
using plan::PlannerOptions;
using plan::RunSource;
using ::ovc::testing::Canonicalize;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

class ParallelPlanTest : public ::testing::TestWithParam<bool> {
 protected:
  ParallelPlanTest()
      : schema_(2, 1),
        table_(MakeTable(schema_, 3000, 6, /*seed=*/11)),
        sorted_left_(MakeTable(schema_, 2000, 8, /*seed=*/12,
                               /*sorted=*/true)),
        sorted_right_(MakeTable(schema_, 1500, 8, /*seed=*/13,
                                /*sorted=*/true)),
        left_run_(testing::RunFromSorted(schema_, sorted_left_)),
        right_run_(testing::RunFromSorted(schema_, sorted_right_)) {}

  /// Runs `build()` twice -- serial oracle and parallel -- and returns
  /// both validated results plus the parallel physical plan's algorithms.
  struct Comparison {
    ExecutionResult serial;
    ExecutionResult parallel;
    const PhysicalPlan* parallel_plan;
  };

  Comparison RunBoth(const std::function<std::unique_ptr<LogicalNode>()>&
                         build,
                     PlannerOptions base = {}) {
    Comparison c;
    {
      PlannerOptions serial = base;
      serial.parallelism = 1;
      PlanExecutor::Options options;
      options.planner = serial;
      options.validate = true;
      PlanExecutor executor(&serial_counters_, &temp_, options);
      auto logical = build();
      c.serial = executor.Run(logical.get());
      EXPECT_TRUE(c.serial.ok()) << c.serial.validation_error;
    }
    {
      PlannerOptions par = base;
      par.parallelism = 4;
      par.exchange.threaded = GetParam();
      par.exchange.batch_rows = 128;
      PlanExecutor::Options options;
      options.planner = par;
      options.validate = true;
      parallel_executor_ =
          std::make_unique<PlanExecutor>(&parallel_counters_, &temp_, options);
      parallel_logical_ = build();
      c.parallel = parallel_executor_->Run(parallel_logical_.get());
      EXPECT_TRUE(c.parallel.ok()) << c.parallel.validation_error;
      c.parallel_plan = parallel_executor_->last_plan();
    }
    return c;
  }

  static void ExpectPartitioned(const PhysicalPlan& plan) {
    EXPECT_TRUE(plan.Uses(PhysicalAlg::kSplitExchange));
    EXPECT_TRUE(plan.Uses(PhysicalAlg::kMergeExchange));
    EXPECT_EQ(plan.parallel_workers(), 4u);
  }

  Schema schema_;
  RowBuffer table_;
  RowBuffer sorted_left_;
  RowBuffer sorted_right_;
  InMemoryRun left_run_;
  InMemoryRun right_run_;
  QueryCounters serial_counters_;
  QueryCounters parallel_counters_;
  TempFileManager temp_;
  std::unique_ptr<PlanExecutor> parallel_executor_;
  std::unique_ptr<LogicalNode> parallel_logical_;
};

TEST_P(ParallelPlanTest, ParallelSortMatchesSerialOracle) {
  auto c = RunBoth([this] {
    return PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
        .Sort()
        .Build();
  });
  ExpectPartitioned(*c.parallel_plan);
  EXPECT_TRUE(c.parallel_plan->Uses(PhysicalAlg::kSort));
  // Both streams were OvcStreamChecker-validated row for row by the
  // executor; contents must agree as multisets (equal-key rows may
  // interleave differently across partitions).
  RowVec serial = ToRowVec(c.serial.rows);
  RowVec parallel = ToRowVec(c.parallel.rows);
  EXPECT_EQ(parallel.size(), 3000u);
  Canonicalize(&serial);
  Canonicalize(&parallel);
  EXPECT_EQ(serial, parallel);
}

TEST_P(ParallelPlanTest, ParallelInSortAggregateMatchesSerialOracle) {
  PlannerOptions base;
  base.prefer_sort_based = true;  // unsorted input -> in-sort aggregation
  auto c = RunBoth(
      [this] {
        return PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
            .Aggregate(2, {{AggFn::kCount, 0}, {AggFn::kSum, 2}})
            .Build();
      },
      base);
  ExpectPartitioned(*c.parallel_plan);
  EXPECT_TRUE(c.parallel_plan->Uses(PhysicalAlg::kInSortAggregate));
  // Group keys are unique, so the merged order is fully deterministic:
  // exact row-for-row equality against the oracle.
  EXPECT_EQ(ToRowVec(c.parallel.rows), ToRowVec(c.serial.rows));
}

TEST_P(ParallelPlanTest, ParallelInStreamAggregateMatchesSerialOracle) {
  auto c = RunBoth([this] {
    return PlanBuilder::Scan(RunSource("sorted", &schema_, &left_run_))
        .Aggregate(1, {{AggFn::kCount, 0}, {AggFn::kMax, 2}})
        .Build();
  });
  ExpectPartitioned(*c.parallel_plan);
  EXPECT_TRUE(c.parallel_plan->Uses(PhysicalAlg::kInStreamAggregate));
  EXPECT_EQ(ToRowVec(c.parallel.rows), ToRowVec(c.serial.rows));
}

TEST_P(ParallelPlanTest, CoPartitionedMergeJoinMatchesSerialOracle) {
  auto c = RunBoth([this] {
    return PlanBuilder::Scan(RunSource("l", &schema_, &left_run_))
        .Join(PlanBuilder::Scan(RunSource("r", &schema_, &right_run_)),
              JoinType::kInner)
        .Build();
  });
  ExpectPartitioned(*c.parallel_plan);
  EXPECT_TRUE(c.parallel_plan->Uses(PhysicalAlg::kMergeJoin));
  RowVec serial = ToRowVec(c.serial.rows);
  RowVec parallel = ToRowVec(c.parallel.rows);
  EXPECT_EQ(serial.size(), parallel.size());
  Canonicalize(&serial);
  Canonicalize(&parallel);
  EXPECT_EQ(serial, parallel);
}

TEST_P(ParallelPlanTest, ParallelJoinOverUnsortedInputsInsertsSortsFirst) {
  // Sort-based fallback composes with the parallel shape: the
  // planner-inserted sorts become the splits' children -- below the
  // exchanges, running on producer threads with region counters -- and
  // the co-partitioned parallel join consumes their sorted coded output.
  PlannerOptions base;
  base.prefer_sort_based = true;
  auto c = RunBoth(
      [this] {
        RowBuffer* t = &table_;
        return PlanBuilder::Scan(BufferSource("l", &schema_, t))
            .Join(PlanBuilder::Scan(BufferSource("r", &schema_, t)),
                  JoinType::kLeftOuter)
            .Build();
      },
      base);
  ExpectPartitioned(*c.parallel_plan);
  EXPECT_EQ(c.parallel_plan->inserted_sorts(), 2u);
  RowVec serial = ToRowVec(c.serial.rows);
  RowVec parallel = ToRowVec(c.parallel.rows);
  Canonicalize(&serial);
  Canonicalize(&parallel);
  EXPECT_EQ(serial, parallel);
}

TEST_P(ParallelPlanTest, WorkerCountersRollUpExactly) {
  // Threaded and inline execution of the same parallel plan must account
  // identical comparison totals after the roll-up: the producer threads
  // only move rows, all metered work lands in some counters instance, and
  // none of it is lost or double-counted.
  // Two shapes: parallel sort, and -- the hard case -- a parallel merge
  // join over unsorted inputs, whose planner-inserted sorts sit *below*
  // the splitting exchanges and therefore run on producer threads (they
  // must be metered by region counters, never the session counters the
  // consumer-side merge uses concurrently).
  std::vector<std::function<std::unique_ptr<LogicalNode>()>> builds = {
      [this] {
        return PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
            .Sort()
            .Build();
      },
      [this] {
        return PlanBuilder::Scan(BufferSource("l", &schema_, &table_))
            .Join(PlanBuilder::Scan(BufferSource("r", &schema_, &table_)),
                  JoinType::kLeftSemi)
            .Build();
      }};
  QueryCounters threaded_counters, inline_counters;
  for (bool threaded : {true, false}) {
    PlannerOptions par;
    par.parallelism = 3;
    par.prefer_sort_based = true;  // join over unsorted -> sorts + merge
    par.exchange.threaded = threaded;
    PlanExecutor::Options options;
    options.planner = par;
    options.validate = false;
    QueryCounters* counters =
        threaded ? &threaded_counters : &inline_counters;
    PlanExecutor executor(counters, &temp_, options);
    for (auto& build : builds) {
      auto logical = build();
      ExecutionResult result = executor.Run(logical.get());
      EXPECT_EQ(result.row_count(), 3000u);
      // Worker counters were folded into the session counters and reset.
      for (const auto& wc : executor.last_plan()->worker_counters()) {
        EXPECT_EQ(wc->column_comparisons, 0u);
        EXPECT_EQ(wc->row_comparisons, 0u);
      }
    }
  }
  EXPECT_GT(threaded_counters.column_comparisons, 0u);
  EXPECT_EQ(threaded_counters.column_comparisons,
            inline_counters.column_comparisons);
  EXPECT_EQ(threaded_counters.row_comparisons,
            inline_counters.row_comparisons);
  EXPECT_EQ(threaded_counters.code_comparisons,
            inline_counters.code_comparisons);
}

TEST_P(ParallelPlanTest, ParallelPlanSupportsRepeatedRuns) {
  // The exchanges' lifecycle fixes in one picture: the same physical plan
  // re-opened end to end (MergeExchange re-open, SplitExchange child
  // rescan) produces the same validated result twice.
  PlannerOptions par;
  par.parallelism = 4;
  par.exchange.threaded = GetParam();
  PlanExecutor::Options options;
  options.planner = par;
  options.validate = true;
  PlanExecutor executor(nullptr, &temp_, options);
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
                     .Sort()
                     .Build();
  PhysicalPlan plan = executor.Plan(logical.get());
  ExecutionResult first = executor.Run(&plan);
  ExecutionResult second = executor.Run(&plan);
  EXPECT_TRUE(first.ok()) << first.validation_error;
  EXPECT_TRUE(second.ok()) << second.validation_error;
  EXPECT_EQ(ToRowVec(first.rows), ToRowVec(second.rows));
  EXPECT_EQ(first.row_count(), 3000u);
}

TEST_P(ParallelPlanTest, PlanDestroyedMidStreamWithoutClose) {
  // Error-path teardown: a parallel plan destroyed after Open() with rows
  // still in flight (no Close()) must join its producer threads before
  // the worker operators they drive are freed -- PhysicalPlan destroys
  // operators in reverse construction order, parents first.
  PlannerOptions par;
  par.parallelism = 4;
  par.exchange.threaded = GetParam();
  par.exchange.queue_batches = 1;
  par.exchange.batch_rows = 16;
  Planner planner(nullptr, &temp_, par);
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
                     .Sort()
                     .Build();
  {
    PhysicalPlan plan = planner.Plan(logical.get());
    plan.root()->Open();
    RowRef ref;
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(plan.root()->Next(&ref));
    // ~PhysicalPlan with live producers blocked on tight queues.
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ParallelPlanTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "threaded" : "inline";
                         });

}  // namespace
}  // namespace ovc
