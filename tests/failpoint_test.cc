// Deterministic fault injection: the failpoint facility itself, bounded
// retry of transient temp-file write failures, clean SqlError reporting
// when retries exhaust, and forced mid-query hash->sort fallbacks.
//
// Failpoints compile to a literal `false` in optimized builds unless
// OVC_ENABLE_FAILPOINTS is defined (the CMake option CI's TSan job sets);
// every test here skips itself when the facility is compiled out.

#include <string>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "common/failpoint.h"
#include "common/temp_file.h"
#include "plan/plan_executor.h"
#include "sql/catalog.h"
#include "sql/session.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

#if OVC_FAILPOINTS_ENABLED
#define SKIP_WITHOUT_FAILPOINTS()
#else
#define SKIP_WITHOUT_FAILPOINTS() \
  GTEST_SKIP() << "failpoints compiled out (NDEBUG without OVC_ENABLE_FAILPOINTS)"
#endif

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  void RegisterTables(sql::Catalog* catalog) {
    sql::Catalog::GeneratedSpec spec;
    spec.distinct_per_column = 500;
    spec.seed = 21;
    ASSERT_TRUE(catalog
                    ->RegisterGenerated("fact", {"k", "v"}, Schema(1, 1),
                                        10000, spec)
                    .ok());
    spec.seed = 22;
    ASSERT_TRUE(catalog
                    ->RegisterGenerated("dim", {"k", "p"}, Schema(1, 1), 500,
                                        spec)
                    .ok());
  }

  static sql::SqlSession::Options SpillingOptions() {
    sql::SqlSession::Options options;
    options.validate = true;
    options.abort_on_violation = false;
    // A tiny sort workspace so every ORDER BY spills run files.
    options.planner.sort_config.memory_rows = 256;
    return options;
  }
};

TEST_F(FailpointTest, ArmTriggerCountsAndDisarm) {
  SKIP_WITHOUT_FAILPOINTS();
  // skip_first=2, fail_times=3: hits 0..1 pass, 2..4 fail, 5.. pass.
  failpoint::Arm("test.point", /*skip_first=*/2, /*fail_times=*/3);
  int failures = 0;
  for (int i = 0; i < 8; ++i) {
    if (OVC_FAILPOINT("test.point")) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(failpoint::Hits("test.point"), 8u);
  failpoint::Disarm("test.point");
  EXPECT_FALSE(OVC_FAILPOINT("test.point"));
  EXPECT_EQ(failpoint::Hits("test.point"), 0u);
}

TEST_F(FailpointTest, TransientWriteFailureIsRetriedAndCounted) {
  SKIP_WITHOUT_FAILPOINTS();
  // One injected write failure, then real writes succeed: the bounded
  // retry loop must absorb it invisibly -- same rows, io_retries counted.
  sql::Catalog catalog;
  RegisterTables(&catalog);
  const std::string query = "SELECT k, v FROM fact ORDER BY k";

  sql::SqlSession oracle_session(&catalog, SpillingOptions());
  sql::SqlResult<sql::QueryResult> oracle = oracle_session.Run(query);
  ASSERT_TRUE(oracle.ok());

  failpoint::Arm("tempfile.write", /*skip_first=*/0, /*fail_times=*/1);
  sql::SqlSession session(&catalog, SpillingOptions());
  sql::SqlResult<sql::QueryResult> got = session.Run(query);
  ASSERT_TRUE(got.ok()) << got.error().ToString();
  EXPECT_EQ(ToRowVec(got.value().result.rows),
            ToRowVec(oracle.value().result.rows));
  EXPECT_GE(session.counters()->io_retries, 1u);
  EXPECT_GT(failpoint::Hits("tempfile.write"), 0u);
}

TEST_F(FailpointTest, ExhaustedWriteRetriesReportCleanSqlError) {
  SKIP_WITHOUT_FAILPOINTS();
  // Every write fails: retries exhaust, the spilling sort degrades, and
  // the session reports a SqlError -- never a truncated row set, never an
  // abort. Disarming afterwards fully recovers the same session.
  sql::Catalog catalog;
  RegisterTables(&catalog);
  const std::string query = "SELECT k, v FROM fact ORDER BY k";

  failpoint::Arm("tempfile.write");
  sql::SqlSession session(&catalog, SpillingOptions());
  sql::SqlResult<sql::QueryResult> got = session.Run(query);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.error().message.find("execution failed"), std::string::npos)
      << got.error().message;
  EXPECT_NE(got.error().message.find("injected"), std::string::npos)
      << got.error().message;

  failpoint::DisarmAll();
  sql::SqlResult<sql::QueryResult> retry = session.Run(query);
  ASSERT_TRUE(retry.ok()) << retry.error().ToString();
  EXPECT_EQ(retry.value().result.row_count(), 10000u);
}

TEST_F(FailpointTest, ExhaustedOpenRetriesReportCleanSqlError) {
  SKIP_WITHOUT_FAILPOINTS();
  sql::Catalog catalog;
  RegisterTables(&catalog);
  failpoint::Arm("tempfile.open");
  sql::SqlSession session(&catalog, SpillingOptions());
  sql::SqlResult<sql::QueryResult> got =
      session.Run("SELECT k, v FROM fact ORDER BY k");
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.error().message.find("execution failed"), std::string::npos)
      << got.error().message;
}

TEST_F(FailpointTest, ForcedJoinOverflowFallsBackDeterministically) {
  SKIP_WITHOUT_FAILPOINTS();
  // The build side fits comfortably; the failpoint forces the overflow
  // decision anyway. The fallback must be invisible in the output and
  // visible in the counters and the EXPLAIN ANALYZE rendering.
  sql::Catalog catalog;
  RegisterTables(&catalog);
  const std::string query =
      "SELECT f.k, f.v, d.p FROM fact f JOIN dim d ON f.k = d.k";
  sql::SqlSession::Options options = SpillingOptions();
  options.planner.cost_policy = plan::CostPolicy::kRuleBased;

  sql::SqlSession oracle_session(&catalog, options);
  sql::SqlResult<sql::QueryResult> oracle = oracle_session.Run(query);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle_session.counters()->hash_join_fallbacks, 0u);

  failpoint::Arm("grace_hash_join.force_overflow");
  sql::SqlSession session(&catalog, options);
  sql::SqlResult<sql::QueryResult> got = session.Run(query);
  ASSERT_TRUE(got.ok()) << got.error().ToString();
  RowVec want = ToRowVec(oracle.value().result.rows);
  RowVec rows = ToRowVec(got.value().result.rows);
  Canonicalize(&want);
  Canonicalize(&rows);
  EXPECT_EQ(rows, want);
  EXPECT_EQ(session.counters()->hash_join_fallbacks, 1u);

  sql::SqlResult<sql::QueryResult> analyzed =
      session.Run("EXPLAIN ANALYZE " + query);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_NE(analyzed.value().explain_text.find("!fallback(hash->sort)"),
            std::string::npos)
      << analyzed.value().explain_text;
  EXPECT_NE(analyzed.value().profile_json.find("\"hash_join_fallbacks\":1"),
            std::string::npos)
      << analyzed.value().profile_json;
}

TEST_F(FailpointTest, ForcedAggregateOverflowFallsBackDeterministically) {
  SKIP_WITHOUT_FAILPOINTS();
  sql::Catalog catalog;
  RegisterTables(&catalog);
  const std::string query =
      "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k";
  sql::SqlSession::Options options = SpillingOptions();
  options.planner.cost_policy = plan::CostPolicy::kRuleBased;

  sql::SqlSession oracle_session(&catalog, options);
  sql::SqlResult<sql::QueryResult> oracle = oracle_session.Run(query);
  ASSERT_TRUE(oracle.ok());

  failpoint::Arm("hash_aggregate.force_overflow");
  sql::SqlSession session(&catalog, options);
  sql::SqlResult<sql::QueryResult> got = session.Run(query);
  ASSERT_TRUE(got.ok()) << got.error().ToString();
  RowVec want = ToRowVec(oracle.value().result.rows);
  RowVec rows = ToRowVec(got.value().result.rows);
  Canonicalize(&want);
  Canonicalize(&rows);
  EXPECT_EQ(rows, want);
  EXPECT_EQ(session.counters()->hash_agg_fallbacks, 1u);
}

}  // namespace
}  // namespace ovc
