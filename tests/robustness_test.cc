// Robustness and edge-case coverage: descending sort directions end to
// end, saturated 48-bit value images, adversarial replacement-selection
// inputs, and B-tree mutation fuzzing against a reference container.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/aggregate.h"
#include "exec/dedup.h"
#include "exec/filter.h"
#include "exec/merge_join.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "sort/run_generation.h"
#include "storage/btree.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::ReferenceSort;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

// ---------------------------------------------------------------------------
// Descending sort directions.

struct DirectionParam {
  std::vector<SortDirection> directions;
  const char* name;
};

class DescendingTest : public ::testing::TestWithParam<DirectionParam> {};

TEST_P(DescendingTest, SortDedupAggregatePipeline) {
  Schema schema(GetParam().directions, /*payload_columns=*/1);
  RowBuffer table = MakeTable(schema, 3000, 5, /*seed=*/301);
  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &table);
  SortConfig config;
  config.memory_rows = 256;
  SortOperator sort(&scan, &counters, &temp, config);
  InStreamAggregate agg(&sort, /*group_prefix=*/2, {{AggFn::kCount, 0}},
                        &counters);
  // DrainValidated's checker runs over the descending schema: both
  // sortedness and codes must respect the directions.
  RowVec out = DrainValidated(&agg);
  EXPECT_GT(out.size(), 1u);
  uint64_t total = 0;
  for (const auto& row : out) total += row[2];
  EXPECT_EQ(total, table.size());
}

TEST_P(DescendingTest, MergeJoinWithDirections) {
  Schema schema(GetParam().directions, /*payload_columns=*/1);
  RowBuffer lt = MakeTable(schema, 500, 4, /*seed=*/302);
  RowBuffer rt = MakeTable(schema, 400, 4, /*seed=*/303);
  QueryCounters counters;
  TempFileManager temp;
  BufferScan lscan(&schema, &lt), rscan(&schema, &rt);
  SortOperator lsort(&lscan, &counters, &temp, SortConfig());
  SortOperator rsort(&rscan, &counters, &temp, SortConfig());
  MergeJoin join(&lsort, &rsort, JoinType::kInner, &counters);
  RowVec out = DrainValidated(&join);

  // Reference: nested loops on raw tables.
  uint64_t expected = 0;
  const uint32_t arity = schema.key_arity();
  for (size_t i = 0; i < lt.size(); ++i) {
    for (size_t j = 0; j < rt.size(); ++j) {
      bool equal = true;
      for (uint32_t c = 0; c < arity; ++c) {
        if (lt.row(i)[c] != rt.row(j)[c]) {
          equal = false;
          break;
        }
      }
      if (equal) ++expected;
    }
  }
  EXPECT_EQ(out.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Directions, DescendingTest,
    ::testing::Values(
        DirectionParam{{SortDirection::kDescending,
                        SortDirection::kDescending,
                        SortDirection::kDescending},
                       "all_desc"},
        DirectionParam{{SortDirection::kAscending,
                        SortDirection::kDescending,
                        SortDirection::kAscending},
                       "mixed"},
        DirectionParam{{SortDirection::kDescending,
                        SortDirection::kAscending,
                        SortDirection::kAscending},
                       "desc_first"}),
    [](const ::testing::TestParamInfo<DirectionParam>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Saturated value images (column values beyond the 48-bit value field).

TEST(Saturation, SortAndDedupWithHugeValues) {
  Schema schema(2, 1);
  RowBuffer table(schema.total_columns());
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    uint64_t* row = table.AppendRow();
    // Mix tiny values with values far beyond 2^48, plus near-saturation
    // neighbors that collide in the 48-bit image.
    switch (rng.Uniform(4)) {
      case 0:
        row[0] = rng.Uniform(4);
        break;
      case 1:
        row[0] = OvcCodec::kValueMask + rng.Uniform(4);
        break;
      case 2:
        row[0] = ~uint64_t{0} - rng.Uniform(4);
        break;
      default:
        row[0] = OvcCodec::kValueMask - rng.Uniform(2);
        break;
    }
    row[1] = rng.Uniform(3) * OvcCodec::kValueMask;
    row[2] = i;
  }
  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &table);
  SortConfig config;
  config.memory_rows = 128;
  SortOperator sort(&scan, &counters, &temp, config);
  DedupOperator dedup(&sort);
  RowVec out = DrainValidated(&dedup);

  RowVec expected = ReferenceSort(schema, table);
  // Reference dedup on keys.
  RowVec keys;
  for (const auto& row : expected) {
    if (keys.empty() || keys.back()[0] != row[0] || keys.back()[1] != row[1]) {
      keys.push_back(row);
    }
  }
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i][0], keys[i][0]);
    EXPECT_EQ(out[i][1], keys[i][1]);
  }
}

TEST(Saturation, FilterTheoremStillHolds) {
  // The max rule with a lossy monotone value image: random sorted stream of
  // saturating values, random filters, checker-validated output.
  Schema schema(3);
  RowBuffer table(schema.total_columns());
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    uint64_t* row = table.AppendRow();
    for (int c = 0; c < 3; ++c) {
      row[c] = OvcCodec::kValueMask - 2 + rng.Uniform(5);
    }
  }
  SortRowsForTest(schema, &table);
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < table.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(table.row(i))
                      : codec.MakeFromRow(
                            table.row(i),
                            cmp.FirstDifference(table.row(i - 1),
                                                table.row(i), 0));
    run.Append(table.row(i), code);
  }
  RunScan scan(&schema, &run);
  uint64_t index = 0;
  FilterOperator filter(&scan, [&index](const uint64_t*) {
    return (index++ % 3) == 1;
  });
  DrainValidated(&filter);
}

// ---------------------------------------------------------------------------
// Replacement selection, adversarial inputs.

TEST(ReplacementSelectionAdversarial, ReverseSortedInput) {
  // Strictly descending input: every fresh row starts the next run, so run
  // lengths collapse to the memory size -- the classic worst case. Output
  // must stay perfectly coded.
  Schema schema(2);
  QueryCounters counters;
  TempFileManager temp;
  ReplacementSelection rs(&schema, &counters, &temp, /*capacity=*/64);
  for (uint64_t i = 0; i < 4000; ++i) {
    const uint64_t row[2] = {4000 - i, i};
    ASSERT_TRUE(rs.Add(row).ok());
  }
  ASSERT_TRUE(rs.Finish().ok());
  std::vector<SpilledRun> runs = rs.TakeRuns();
  // Worst case: about N / capacity runs.
  EXPECT_GE(runs.size(), 4000u / 64 - 2);
  uint64_t total = 0;
  for (const SpilledRun& run : runs) {
    total += run.rows;
    RunFileReader reader(&schema);
    ASSERT_TRUE(reader.Open(run.path).ok());
    OvcStreamChecker checker(&schema);
    const uint64_t* row = nullptr;
    Ovc code = 0;
    while (reader.Next(&row, &code)) {
      ASSERT_TRUE(checker.Observe(row, code)) << checker.error();
    }
  }
  EXPECT_EQ(total, 4000u);
}

TEST(ReplacementSelectionAdversarial, ConstantInput) {
  // All-equal keys: everything is a duplicate of the first winner; one run.
  Schema schema(2);
  TempFileManager temp;
  QueryCounters counters;
  ReplacementSelection rs(&schema, &counters, &temp, /*capacity=*/32);
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t row[2] = {7, 7};
    ASSERT_TRUE(rs.Add(row).ok());
  }
  ASSERT_TRUE(rs.Finish().ok());
  EXPECT_EQ(rs.run_count(), 1u);
}

TEST(ReplacementSelectionAdversarial, SawtoothInput) {
  Schema schema(2);
  TempFileManager temp;
  QueryCounters counters;
  ReplacementSelection rs(&schema, &counters, &temp, /*capacity=*/128);
  Rng rng(31);
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t row[2] = {(i * 37) % 1000, rng.Uniform(5)};
    ASSERT_TRUE(rs.Add(row).ok());
  }
  ASSERT_TRUE(rs.Finish().ok());
  std::vector<SpilledRun> runs = rs.TakeRuns();
  uint64_t total = 0;
  for (const SpilledRun& run : runs) {
    total += run.rows;
    RunFileReader reader(&schema);
    ASSERT_TRUE(reader.Open(run.path).ok());
    OvcStreamChecker checker(&schema);
    const uint64_t* row = nullptr;
    Ovc code = 0;
    while (reader.Next(&row, &code)) {
      ASSERT_TRUE(checker.Observe(row, code)) << checker.error();
    }
  }
  EXPECT_EQ(total, 10000u);
}

// ---------------------------------------------------------------------------
// B-tree mutation fuzzing.

TEST(BTreeFuzz, RandomInsertDeleteAgainstMultiset) {
  Schema schema(2, 1);
  QueryCounters counters;
  BTree tree(&schema, &counters, /*node_capacity=*/8);
  std::multiset<std::pair<uint64_t, uint64_t>> reference;
  Rng rng(41);
  for (int op = 0; op < 5000; ++op) {
    const uint64_t k0 = rng.Uniform(16);
    const uint64_t k1 = rng.Uniform(16);
    const uint64_t row[3] = {k0, k1, static_cast<uint64_t>(op)};
    if (rng.Chance(2, 3) || reference.empty()) {
      tree.Insert(row);
      reference.emplace(k0, k1);
    } else {
      const bool tree_deleted = tree.Delete(row);
      auto it = reference.find({k0, k1});
      const bool ref_deleted = it != reference.end();
      if (ref_deleted) reference.erase(it);
      ASSERT_EQ(tree_deleted, ref_deleted) << "op " << op;
    }
    ASSERT_EQ(tree.size(), reference.size()) << "op " << op;
    // Periodically validate the whole stream (sortedness + codes).
    if (op % 500 == 499) {
      auto scan = tree.Scan();
      RowVec rows = DrainValidated(scan.get());
      ASSERT_EQ(rows.size(), reference.size());
      auto ref_it = reference.begin();
      for (const auto& r : rows) {
        ASSERT_EQ(r[0], ref_it->first);
        ASSERT_EQ(r[1], ref_it->second);
        ++ref_it;
      }
    }
  }
  // Theorem-based delete fixups never compare columns: a delete-only phase
  // must not move the compared-fixup counter (insert fixups may compare in
  // the equal-code case; delete fixups are pure max).
  const uint64_t compared_before = tree.compared_code_fixups();
  while (!reference.empty()) {
    const auto [k0, k1] = *reference.begin();
    reference.erase(reference.begin());
    const uint64_t row[3] = {k0, k1, 0};
    ASSERT_TRUE(tree.Delete(row));
  }
  EXPECT_EQ(tree.compared_code_fixups(), compared_before);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BTreeFuzz, DeleteEverything) {
  Schema schema(1, 0);
  BTree tree(&schema, nullptr, /*node_capacity=*/4);
  for (uint64_t i = 0; i < 500; ++i) {
    const uint64_t row[1] = {i % 37};
    tree.Insert(row);
  }
  for (uint64_t pass = 0; pass < 40; ++pass) {
    for (uint64_t k = 0; k < 37; ++k) {
      const uint64_t row[1] = {k};
      tree.Delete(row);
    }
  }
  EXPECT_EQ(tree.size(), 0u);
  auto scan = tree.Scan();
  EXPECT_TRUE(DrainValidated(scan.get()).empty());
}

// ---------------------------------------------------------------------------
// Failure behavior: corrupted or missing spill files.

TEST(FailureInjection, MissingRunFileReportsError) {
  Schema schema(2);
  RunFileReader reader(&schema);
  Status s = reader.Open("/nonexistent/path/run-0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(FailureInjection, WriterToUnwritablePathReportsError) {
  Schema schema(2);
  RunFileWriter writer(&schema, nullptr);
  Status s = writer.Open("/nonexistent-dir/run-0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ovc
