// SQL lexer + parser tests: token positions, AST structure, the
// ToString round-trip property, and rejection cases with exact error
// positions and caret rendering.

#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace ovc::sql {
namespace {

TEST(Lexer, TokensAndPositions) {
  auto result = Tokenize("SELECT a,\n  t.b FROM t1;");
  ASSERT_TRUE(result.ok());
  const std::vector<Token>& tokens = result.value();
  ASSERT_EQ(tokens.size(), 10u);  // SELECT a , t . b FROM t1 ; <end>
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].normalized, "SELECT");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].normalized, "a");
  EXPECT_EQ(tokens[1].column, 8u);
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  // t.b on line 2, after two leading spaces.
  EXPECT_EQ(tokens[3].line, 2u);
  EXPECT_EQ(tokens[3].column, 3u);
  EXPECT_EQ(tokens[4].type, TokenType::kDot);
  EXPECT_EQ(tokens[5].normalized, "b");
  EXPECT_EQ(tokens[8].type, TokenType::kSemicolon);
  EXPECT_EQ(tokens[9].type, TokenType::kEnd);
}

TEST(Lexer, CaseInsensitivityAndComments) {
  auto result = Tokenize("select A -- trailing comment; with semicolon\nFrOm T");
  ASSERT_TRUE(result.ok());
  const std::vector<Token>& tokens = result.value();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].normalized, "SELECT");
  EXPECT_EQ(tokens[1].normalized, "a");  // identifiers fold to lowercase
  EXPECT_EQ(tokens[1].text, "A");        // raw text preserved for errors
  EXPECT_EQ(tokens[2].normalized, "FROM");
  EXPECT_EQ(tokens[3].normalized, "t");
}

TEST(Lexer, OperatorsAndIntegers) {
  auto result = Tokenize("1 <= 2 <> 18446744073709551615 >=");
  ASSERT_TRUE(result.ok());
  const std::vector<Token>& tokens = result.value();
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 1u);
  EXPECT_EQ(tokens[1].type, TokenType::kLe);
  EXPECT_EQ(tokens[3].type, TokenType::kNe);
  EXPECT_EQ(tokens[4].int_value, UINT64_MAX);
  EXPECT_EQ(tokens[5].type, TokenType::kGe);
}

TEST(Lexer, RejectsBadInput) {
  auto bad_char = Tokenize("SELECT a # b");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_EQ(bad_char.error().column, 10u);
  EXPECT_EQ(bad_char.error().token, "#");

  auto overflow = Tokenize("SELECT 18446744073709551616");
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().message, "integer literal overflows uint64");

  auto malformed = Tokenize("SELECT 12x");
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.error().message, "malformed number");
}

// --- AST structure ---------------------------------------------------------

Statement MustParse(std::string_view sql) {
  auto result = ParseStatement(sql);
  EXPECT_TRUE(result.ok()) << result.error().ToString();
  return std::move(result).value();
}

TEST(Parser, FullQueryShape) {
  Statement stmt = MustParse(
      "EXPLAIN SELECT DISTINCT o.custkey, COUNT(*) AS n, SUM(l.qty) "
      "FROM orders o INNER JOIN lineitem AS l ON o.orderkey = l.orderkey "
      "WHERE o.custkey < 100 AND l.qty >= 2 "
      "GROUP BY o.custkey ORDER BY n DESC, o.custkey LIMIT 10;");
  EXPECT_TRUE(stmt.explain);
  const SelectCore& core = stmt.select.first;
  EXPECT_TRUE(core.distinct);
  ASSERT_EQ(core.items.size(), 3u);
  EXPECT_FALSE(core.items[0].is_aggregate);
  EXPECT_EQ(core.items[0].column.qualifier, "o");
  EXPECT_EQ(core.items[0].column.name, "custkey");
  EXPECT_TRUE(core.items[1].is_aggregate);
  EXPECT_TRUE(core.items[1].agg_star);
  EXPECT_EQ(core.items[1].alias, "n");
  EXPECT_EQ(core.items[2].agg, AggKind::kSum);
  EXPECT_EQ(core.from.table, "orders");
  EXPECT_EQ(core.from.alias, "o");
  ASSERT_EQ(core.joins.size(), 1u);
  EXPECT_EQ(core.joins[0].table.alias, "l");
  ASSERT_EQ(core.joins[0].on.size(), 1u);
  EXPECT_EQ(core.joins[0].on[0].first.ToString(), "o.orderkey");
  ASSERT_EQ(core.where.size(), 2u);
  EXPECT_EQ(core.where[0].op, CompareOp::kLt);
  EXPECT_TRUE(core.where[0].rhs_is_literal);
  EXPECT_EQ(core.where[0].rhs_literal, 100u);
  ASSERT_EQ(core.group_by.size(), 1u);
  ASSERT_EQ(stmt.select.order_by.size(), 2u);
  EXPECT_TRUE(stmt.select.order_by[0].descending);
  EXPECT_FALSE(stmt.select.order_by[1].descending);
  EXPECT_TRUE(stmt.select.has_limit);
  EXPECT_EQ(stmt.select.limit, 10u);
}

TEST(Parser, CountDistinctAndSetOps) {
  Statement stmt = MustParse(
      "SELECT site, COUNT(DISTINCT visitor) FROM hits GROUP BY site");
  EXPECT_EQ(stmt.select.first.items[1].agg, AggKind::kCountDistinct);

  Statement setop = MustParse(
      "SELECT a FROM t1 INTERSECT SELECT a FROM t2 "
      "UNION ALL SELECT a FROM t3 ORDER BY a");
  ASSERT_EQ(setop.select.set_ops.size(), 2u);
  EXPECT_EQ(setop.select.set_ops[0].kind, SetOpKind::kIntersect);
  EXPECT_FALSE(setop.select.set_ops[0].all);
  EXPECT_EQ(setop.select.set_ops[1].kind, SetOpKind::kUnion);
  EXPECT_TRUE(setop.select.set_ops[1].all);
  EXPECT_EQ(setop.select.order_by.size(), 1u);
}

TEST(Parser, ExplainAnalyze) {
  Statement stmt = MustParse("EXPLAIN ANALYZE SELECT a FROM t");
  EXPECT_TRUE(stmt.explain);
  EXPECT_TRUE(stmt.analyze);

  // Plain EXPLAIN does not set analyze; ANALYZE alone is not a keyword
  // prefix (it binds to EXPLAIN only).
  Statement plain = MustParse("EXPLAIN SELECT a FROM t");
  EXPECT_TRUE(plain.explain);
  EXPECT_FALSE(plain.analyze);
}

// --- Round trip ------------------------------------------------------------

void CheckRoundTrip(std::string_view sql) {
  Statement first = MustParse(sql);
  const std::string rendered = first.ToString();
  Statement second = MustParse(rendered);
  // Canonical rendering is a fixed point: parse(render(parse(s)))
  // renders identically.
  EXPECT_EQ(rendered, second.ToString()) << "input: " << sql;
}

TEST(Parser, ToStringRoundTrip) {
  CheckRoundTrip("SELECT * FROM t");
  CheckRoundTrip("select a, b c from t where a=1 and b!=c");
  CheckRoundTrip(
      "SELECT DISTINCT a.x, COUNT(*) AS n FROM t1 a INNER JOIN t2 b "
      "ON a.x = b.y AND a.z = b.w GROUP BY a.x ORDER BY n DESC LIMIT 7");
  CheckRoundTrip("SELECT COUNT(DISTINCT v) AS dv FROM hits GROUP BY site");
  CheckRoundTrip("SELECT MIN(a), MAX(b), SUM(c), COUNT(d) FROM t GROUP BY e");
  CheckRoundTrip(
      "SELECT a FROM t1 EXCEPT ALL SELECT a FROM t2 ORDER BY a DESC LIMIT 1");
  CheckRoundTrip("SELECT a FROM t WHERE 5 <= a AND a <> 7");
  CheckRoundTrip("EXPLAIN ANALYZE SELECT a, COUNT(*) AS n FROM t GROUP BY a");
}

// --- Errors ----------------------------------------------------------------

SqlError MustFail(std::string_view sql) {
  auto result = ParseStatement(sql);
  EXPECT_FALSE(result.ok()) << "unexpectedly parsed: " << sql;
  if (result.ok()) return SqlError{};
  return result.error();
}

TEST(Parser, ErrorPositions) {
  SqlError missing_from = MustFail("SELECT a, b\nWHERE x = 1");
  EXPECT_EQ(missing_from.message, "expected FROM");
  EXPECT_EQ(missing_from.line, 2u);
  EXPECT_EQ(missing_from.column, 1u);
  EXPECT_EQ(missing_from.token, "WHERE");

  SqlError missing_on = MustFail("SELECT a FROM t1 JOIN t2 WHERE a = 1");
  EXPECT_EQ(missing_on.message, "expected ON");
  EXPECT_EQ(missing_on.column, 26u);

  SqlError bad_limit = MustFail("SELECT a FROM t LIMIT x");
  EXPECT_EQ(bad_limit.message, "expected integer after LIMIT");
  EXPECT_EQ(bad_limit.column, 23u);

  SqlError trailing = MustFail("SELECT a FROM t; SELECT b FROM t");
  EXPECT_EQ(trailing.message, "unexpected input after statement");

  SqlError empty = MustFail("");
  EXPECT_EQ(empty.message, "expected SELECT");

  SqlError no_cmp = MustFail("SELECT a FROM t WHERE a");
  EXPECT_EQ(no_cmp.message, "expected comparison operator");

  SqlError agg_paren = MustFail("SELECT COUNT * FROM t");
  EXPECT_EQ(agg_paren.message, "expected ( after aggregate function");

  SqlError join_eq = MustFail("SELECT a FROM t1 JOIN t2 ON a < b");
  EXPECT_EQ(join_eq.message, "expected = in join condition");

  SqlError order_col = MustFail("SELECT a FROM t ORDER BY 3");
  EXPECT_EQ(order_col.message, "expected column name");
}

TEST(Parser, CaretRendering) {
  const std::string sql = "SELECT a,\nFROM t";
  SqlError err = MustFail(sql);
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.column, 1u);
  const std::string rendered = err.Render(sql);
  // The offending line and a caret with a tilde tail under 'FROM'.
  EXPECT_NE(rendered.find("FROM t"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("\n  ^~~~"), std::string::npos) << rendered;

  // Mid-line positions indent the caret under the token.
  SqlError mid = MustFail("SELECT a FROM t LIMIT x");
  const std::string mid_render = mid.Render("SELECT a FROM t LIMIT x");
  EXPECT_NE(mid_render.find("SELECT a FROM t LIMIT x\n"),
            std::string::npos);
  EXPECT_NE(mid_render.find("                      ^"), std::string::npos)
      << mid_render;

  // Unknown positions degrade to the one-line form.
  SqlError no_pos;
  no_pos.message = "boom";
  EXPECT_EQ(no_pos.Render("SELECT"), "error: boom");
}

TEST(Parser, ScriptSplitting) {
  auto script = ParseScript(
      "-- leading comment\n"
      "SELECT a FROM t;\n"
      ";;\n"
      "EXPLAIN SELECT b FROM u;\n");
  ASSERT_TRUE(script.ok()) << script.error().ToString();
  ASSERT_EQ(script.value().size(), 2u);
  EXPECT_FALSE(script.value()[0].explain);
  EXPECT_TRUE(script.value()[1].explain);

  auto bad = ParseScript("SELECT a FROM t; SELECT FROM u;");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "expected column name");
}

}  // namespace
}  // namespace ovc::sql
