// Tree-of-losers priority queues: in-memory sorting (PqSorter), merging
// (OvcMerger), the Section 5 duplicate bypass, and the Figures 2/3 claim
// that code-decided merges need no column comparisons.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ovc_checker.h"
#include "pq/loser_tree.h"
#include "pq/plain_loser_tree.h"
#include "sort/run.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::MakeTable;
using ::ovc::testing::ReferenceSort;
using ::ovc::testing::RowVec;

struct SortParam {
  uint32_t arity;
  uint64_t rows;
  uint64_t distinct;
};

class PqSorterTest : public ::testing::TestWithParam<SortParam> {};

TEST_P(PqSorterTest, MatchesReferenceSortAndProducesValidCodes) {
  const auto p = GetParam();
  Schema schema(p.arity, 1);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator comparator(&schema, &counters);
  RowBuffer table = MakeTable(schema, p.rows, p.distinct, /*seed=*/p.rows + 1);

  std::vector<const uint64_t*> ptrs;
  for (size_t i = 0; i < table.size(); ++i) ptrs.push_back(table.row(i));

  PqSorter sorter(&codec, &comparator);
  sorter.Reset(ptrs.data(), static_cast<uint32_t>(ptrs.size()));
  OvcStreamChecker checker(&schema);
  RowVec out;
  RowRef ref;
  while (sorter.Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + schema.total_columns());
    ASSERT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
  }
  RowVec expected = ReferenceSort(schema, table);
  // Key order must match; payloads may permute within duplicate keys, so
  // compare canonicalized.
  ::ovc::testing::Canonicalize(&out);
  ::ovc::testing::Canonicalize(&expected);
  EXPECT_EQ(out, expected);

  // The paper's bound: total column comparisons <= N x K.
  EXPECT_LE(counters.column_comparisons, p.rows * p.arity)
      << "N x K bound violated";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PqSorterTest,
    ::testing::Values(SortParam{1, 100, 3}, SortParam{2, 1000, 2},
                      SortParam{4, 1000, 4}, SortParam{4, 1000, 100},
                      SortParam{8, 2000, 2}, SortParam{6, 1, 5},
                      SortParam{3, 2, 1}, SortParam{5, 777, 3}),
    [](const ::testing::TestParamInfo<SortParam>& info) {
      return "arity" + std::to_string(info.param.arity) + "_rows" +
             std::to_string(info.param.rows) + "_domain" +
             std::to_string(info.param.distinct);
    });

TEST(PqSorter, EmptyInput) {
  Schema schema(2);
  OvcCodec codec(&schema);
  KeyComparator comparator(&schema, nullptr);
  PqSorter sorter(&codec, &comparator);
  sorter.Reset(nullptr, 0);
  RowRef ref;
  EXPECT_FALSE(sorter.Next(&ref));
}

TEST(PlainPqSorter, MatchesReference) {
  Schema schema(3);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator comparator(&schema, &counters);
  RowBuffer table = MakeTable(schema, 500, 3, /*seed=*/9);
  std::vector<const uint64_t*> ptrs;
  for (size_t i = 0; i < table.size(); ++i) ptrs.push_back(table.row(i));
  PlainPqSorter sorter(&codec, &comparator);
  sorter.Reset(ptrs.data(), static_cast<uint32_t>(ptrs.size()));
  RowVec out;
  RowRef ref;
  while (sorter.Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + schema.total_columns());
  }
  RowVec expected = ReferenceSort(schema, table);
  ::ovc::testing::Canonicalize(&out);
  ::ovc::testing::Canonicalize(&expected);
  EXPECT_EQ(out, expected);
  // No N x K guarantee for the plain tree: with a low-cardinality domain it
  // must exceed the OVC comparison count (sanity-check the baseline is
  // actually more expensive).
  QueryCounters ovc_counters;
  KeyComparator ovc_comparator(&schema, &ovc_counters);
  PqSorter ovc_sorter(&codec, &ovc_comparator);
  ovc_sorter.Reset(ptrs.data(), static_cast<uint32_t>(ptrs.size()));
  while (ovc_sorter.Next(&ref)) {
  }
  EXPECT_GT(counters.column_comparisons, ovc_counters.column_comparisons);
}

// Builds an InMemoryRun from sorted rows with correct codes.
InMemoryRun MakeRun(const Schema& schema, const RowVec& sorted_rows) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < sorted_rows.size(); ++i) {
    Ovc code;
    if (i == 0) {
      code = codec.MakeInitial(sorted_rows[i].data());
    } else {
      const uint32_t d =
          cmp.FirstDifference(sorted_rows[i - 1].data(), sorted_rows[i].data(),
                              0);
      code = codec.MakeFromRow(sorted_rows[i].data(), d);
    }
    run.Append(sorted_rows[i].data(), code);
  }
  return run;
}

struct MergeParam {
  uint32_t fan_in;
  uint64_t rows_per_run;
  uint64_t distinct;
  bool bypass;
};

class OvcMergerTest : public ::testing::TestWithParam<MergeParam> {};

TEST_P(OvcMergerTest, MergesToOneValidStream) {
  const auto p = GetParam();
  Schema schema(4, 1);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator comparator(&schema, &counters);

  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<std::unique_ptr<InMemoryRunSource>> source_storage;
  std::vector<MergeSource*> sources;
  RowVec all;
  for (uint32_t r = 0; r < p.fan_in; ++r) {
    RowBuffer t = MakeTable(schema, p.rows_per_run, p.distinct,
                            /*seed=*/100 + r, /*sorted=*/true);
    RowVec sorted = ::ovc::testing::ToRowVec(t);
    for (const auto& row : sorted) all.push_back(row);
    runs.push_back(std::make_unique<InMemoryRun>(MakeRun(schema, sorted)));
    source_storage.push_back(
        std::make_unique<InMemoryRunSource>(runs.back().get()));
    sources.push_back(source_storage.back().get());
  }

  OvcMerger::Options options;
  options.duplicate_bypass = p.bypass;
  OvcMerger merger(&codec, &comparator, sources, options);
  OvcStreamChecker checker(&schema);
  RowVec out;
  RowRef ref;
  while (merger.Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + schema.total_columns());
    ASSERT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
  }
  ASSERT_EQ(out.size(), all.size());
  RowVec expected = all;
  ::ovc::testing::Canonicalize(&expected);
  RowVec got = out;
  ::ovc::testing::Canonicalize(&got);
  EXPECT_EQ(got, expected);
  // Merge comparisons also respect the N x K bound.
  EXPECT_LE(counters.column_comparisons,
            all.size() * schema.key_arity());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OvcMergerTest,
    ::testing::Values(MergeParam{2, 200, 3, true}, MergeParam{3, 100, 2, true},
                      MergeParam{8, 100, 4, true},
                      MergeParam{8, 100, 4, false},
                      MergeParam{13, 50, 2, true}, MergeParam{1, 50, 2, true},
                      MergeParam{16, 0, 2, true}),
    [](const ::testing::TestParamInfo<MergeParam>& info) {
      return "fanin" + std::to_string(info.param.fan_in) + "_rows" +
             std::to_string(info.param.rows_per_run) + "_domain" +
             std::to_string(info.param.distinct) +
             (info.param.bypass ? "_bypass" : "_nobypass");
    });

TEST(OvcMerger, DuplicateBypassCountsRows) {
  // A run full of duplicates: every successor after the first should bypass
  // the merge logic (Section 5).
  Schema schema(2);
  RowVec dup_rows(100, {7, 7});
  InMemoryRun run = MakeRun(schema, dup_rows);
  InMemoryRunSource source(&run);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator comparator(&schema, &counters);
  OvcMerger merger(&codec, &comparator, {&source});
  RowRef ref;
  uint64_t n = 0;
  while (merger.Next(&ref)) ++n;
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(counters.merge_bypass_rows, 99u);
  EXPECT_EQ(counters.column_comparisons, 0u);
}

TEST(OvcMerger, DistinctFirstColumnsNeedNoColumnComparisons) {
  // The Figures 2/3 claim: when codes decide every comparison, merging does
  // not touch a single column value. Runs with disjoint, interleaved first
  // columns give exactly that.
  Schema schema(3);
  RowVec run_a, run_b;
  for (uint64_t i = 0; i < 100; ++i) {
    run_a.push_back({2 * i, 5, 5});
    run_b.push_back({2 * i + 1, 5, 5});
  }
  InMemoryRun a = MakeRun(schema, run_a);
  InMemoryRun b = MakeRun(schema, run_b);
  InMemoryRunSource sa(&a), sb(&b);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator comparator(&schema, &counters);
  OvcMerger merger(&codec, &comparator, {&sa, &sb});
  OvcStreamChecker checker(&schema);
  RowRef ref;
  uint64_t n = 0;
  while (merger.Next(&ref)) {
    ASSERT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
    ++n;
  }
  EXPECT_EQ(n, 200u);
  EXPECT_EQ(counters.column_comparisons, 0u)
      << "codes should decide every comparison";
  EXPECT_GT(counters.code_comparisons, 0u);
}

TEST(OvcMerger, StableOnEqualKeys) {
  // Equal keys come out in input-index order: payloads from run 0 first.
  Schema schema(1, 1);
  RowVec run_a = {{5, 100}, {5, 101}};
  RowVec run_b = {{5, 200}, {6, 201}};
  InMemoryRun a = MakeRun(schema, run_a);
  InMemoryRun b = MakeRun(schema, run_b);
  InMemoryRunSource sa(&a), sb(&b);
  OvcCodec codec(&schema);
  KeyComparator comparator(&schema, nullptr);
  OvcMerger merger(&codec, &comparator, {&sa, &sb});
  RowRef ref;
  std::vector<uint64_t> payloads;
  while (merger.Next(&ref)) payloads.push_back(ref.cols[1]);
  EXPECT_EQ(payloads, (std::vector<uint64_t>{100, 101, 200, 201}));
}

TEST(PlainMerger, NaiveOutputCodesAreValid) {
  Schema schema(3);
  RowBuffer t1 = MakeTable(schema, 200, 3, /*seed=*/5, /*sorted=*/true);
  RowBuffer t2 = MakeTable(schema, 150, 3, /*seed=*/6, /*sorted=*/true);
  InMemoryRun a = MakeRun(schema, ::ovc::testing::ToRowVec(t1));
  InMemoryRun b = MakeRun(schema, ::ovc::testing::ToRowVec(t2));
  InMemoryRunSource sa(&a), sb(&b);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator comparator(&schema, &counters);
  PlainMerger::Options options;
  options.derive_output_codes = true;
  PlainMerger merger(&codec, &comparator, {&sa, &sb}, options);
  OvcStreamChecker checker(&schema);
  RowRef ref;
  uint64_t n = 0;
  while (merger.Next(&ref)) {
    ASSERT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
    ++n;
  }
  EXPECT_EQ(n, 350u);
}

}  // namespace
}  // namespace ovc
