// Merge join (all eight types) and set operations: differential tests
// against naive reference implementations, with output-code validation.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "exec/merge_join.h"
#include "exec/scan.h"
#include "exec/set_operation.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

InMemoryRun RunFromSorted(const Schema& schema, const RowBuffer& sorted) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < sorted.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(sorted.row(i))
                      : codec.MakeFromRow(
                            sorted.row(i),
                            cmp.FirstDifference(sorted.row(i - 1),
                                                sorted.row(i), 0));
    run.Append(sorted.row(i), code);
  }
  return run;
}

// Reference join over materialized tables (nested loops, all types).
RowVec ReferenceJoin(const Schema& ls, const Schema& rs, const RowVec& left,
                     const RowVec& right, JoinType type) {
  const uint32_t arity = ls.key_arity();
  auto keys_equal = [&](const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
    for (uint32_t c = 0; c < arity; ++c) {
      if (a[c] != b[c]) return false;
    }
    return true;
  };
  RowVec out;
  auto combined = [&](const std::vector<uint64_t>* l,
                      const std::vector<uint64_t>* r) {
    std::vector<uint64_t> row(arity + ls.payload_columns() +
                              rs.payload_columns() + 1);
    const std::vector<uint64_t>& key = l != nullptr ? *l : *r;
    for (uint32_t c = 0; c < arity; ++c) row[c] = key[c];
    uint64_t ind = 0;
    if (l != nullptr) {
      for (uint32_t c = 0; c < ls.payload_columns(); ++c) {
        row[arity + c] = (*l)[arity + c];
      }
      ind |= 1;
    }
    if (r != nullptr) {
      for (uint32_t c = 0; c < rs.payload_columns(); ++c) {
        row[arity + ls.payload_columns() + c] = (*r)[arity + c];
      }
      ind |= 2;
    }
    row.back() = ind;
    return row;
  };

  switch (type) {
    case JoinType::kInner:
    case JoinType::kLeftOuter:
    case JoinType::kRightOuter:
    case JoinType::kFullOuter: {
      std::vector<bool> right_matched(right.size(), false);
      for (const auto& l : left) {
        bool matched = false;
        for (size_t j = 0; j < right.size(); ++j) {
          if (keys_equal(l, right[j])) {
            out.push_back(combined(&l, &right[j]));
            matched = true;
            right_matched[j] = true;
          }
        }
        if (!matched &&
            (type == JoinType::kLeftOuter || type == JoinType::kFullOuter)) {
          out.push_back(combined(&l, nullptr));
        }
      }
      if (type == JoinType::kRightOuter || type == JoinType::kFullOuter) {
        for (size_t j = 0; j < right.size(); ++j) {
          if (!right_matched[j]) {
            out.push_back(combined(nullptr, &right[j]));
          }
        }
      }
      break;
    }
    case JoinType::kLeftSemi:
    case JoinType::kLeftAnti: {
      for (const auto& l : left) {
        bool matched = false;
        for (const auto& r : right) {
          if (keys_equal(l, r)) {
            matched = true;
            break;
          }
        }
        if (matched == (type == JoinType::kLeftSemi)) out.push_back(l);
      }
      break;
    }
    case JoinType::kRightSemi:
    case JoinType::kRightAnti: {
      for (const auto& r : right) {
        bool matched = false;
        for (const auto& l : left) {
          if (keys_equal(l, r)) {
            matched = true;
            break;
          }
        }
        if (matched == (type == JoinType::kRightSemi)) out.push_back(r);
      }
      break;
    }
  }
  return out;
}

struct JoinParam {
  JoinType type;
  uint64_t left_rows;
  uint64_t right_rows;
  uint64_t distinct;
  const char* name;
};

class MergeJoinTest : public ::testing::TestWithParam<JoinParam> {};

TEST_P(MergeJoinTest, MatchesReferenceWithValidCodes) {
  const auto p = GetParam();
  Schema ls(2, 1), rs(2, 2);
  RowBuffer lt = MakeTable(ls, p.left_rows, p.distinct, /*seed=*/21,
                           /*sorted=*/true);
  RowBuffer rt = MakeTable(rs, p.right_rows, p.distinct, /*seed=*/22,
                           /*sorted=*/true);
  InMemoryRun lrun = RunFromSorted(ls, lt);
  InMemoryRun rrun = RunFromSorted(rs, rt);
  RunScan lscan(&ls, &lrun), rscan(&rs, &rrun);
  QueryCounters counters;
  MergeJoin join(&lscan, &rscan, p.type, &counters);
  RowVec out = DrainValidated(&join);
  RowVec expected = ReferenceJoin(ls, rs, ToRowVec(lt), ToRowVec(rt), p.type);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, MergeJoinTest,
    ::testing::Values(
        JoinParam{JoinType::kInner, 300, 200, 8, "inner"},
        JoinParam{JoinType::kInner, 300, 200, 3, "inner_manytomany"},
        JoinParam{JoinType::kLeftOuter, 300, 200, 8, "left_outer"},
        JoinParam{JoinType::kRightOuter, 300, 200, 8, "right_outer"},
        JoinParam{JoinType::kFullOuter, 300, 200, 8, "full_outer"},
        JoinParam{JoinType::kFullOuter, 100, 400, 12, "full_outer_skew"},
        JoinParam{JoinType::kLeftSemi, 300, 200, 8, "left_semi"},
        JoinParam{JoinType::kLeftAnti, 300, 200, 8, "left_anti"},
        JoinParam{JoinType::kRightSemi, 300, 200, 8, "right_semi"},
        JoinParam{JoinType::kRightAnti, 300, 200, 8, "right_anti"},
        JoinParam{JoinType::kInner, 0, 200, 8, "inner_empty_left"},
        JoinParam{JoinType::kFullOuter, 300, 0, 8, "full_outer_empty_right"},
        JoinParam{JoinType::kLeftAnti, 200, 0, 4, "left_anti_empty_right"}),
    [](const ::testing::TestParamInfo<JoinParam>& info) {
      return info.param.name;
    });

TEST(MergeJoin, NoComparisonsBeyondMergeLogic) {
  // Joining two identical single-row-per-key streams: the merge decides
  // everything, and deriving output codes adds nothing. The total column
  // comparisons stay within the merge's own N x K budget.
  Schema schema(3, 1);
  RowBuffer t = MakeTable(schema, 1000, 4, /*seed=*/31, /*sorted=*/true);
  InMemoryRun r1 = RunFromSorted(schema, t);
  InMemoryRun r2 = RunFromSorted(schema, t);
  RunScan s1(&schema, &r1), s2(&schema, &r2);
  QueryCounters counters;
  MergeJoin join(&s1, &s2, JoinType::kInner, &counters);
  DrainValidated(&join);
  EXPECT_LE(counters.column_comparisons, 2 * 1000u * schema.key_arity());
}

// ---------------------------------------------------------------------------
// Set operations.

RowVec ReferenceSetOp(RowVec left, RowVec right, SetOpType type, bool all) {
  std::map<std::vector<uint64_t>, std::pair<uint64_t, uint64_t>> counts;
  for (const auto& r : left) ++counts[r].first;
  for (const auto& r : right) ++counts[r].second;
  RowVec out;
  for (const auto& [key, c] : counts) {
    uint64_t copies = 0;
    switch (type) {
      case SetOpType::kIntersect:
        copies = all ? std::min(c.first, c.second)
                     : ((c.first > 0 && c.second > 0) ? 1 : 0);
        break;
      case SetOpType::kExcept:
        copies = all ? (c.first > c.second ? c.first - c.second : 0)
                     : ((c.first > 0 && c.second == 0) ? 1 : 0);
        break;
      case SetOpType::kUnion:
        copies = all ? c.first + c.second : 1;
        break;
    }
    for (uint64_t i = 0; i < copies; ++i) out.push_back(key);
  }
  return out;
}

struct SetOpParam {
  SetOpType type;
  bool all;
  uint64_t distinct;
  const char* name;
};

class SetOperationTest : public ::testing::TestWithParam<SetOpParam> {};

TEST_P(SetOperationTest, MatchesReference) {
  const auto p = GetParam();
  Schema schema(3);
  RowBuffer lt = MakeTable(schema, 400, p.distinct, /*seed=*/41,
                           /*sorted=*/true);
  RowBuffer rt = MakeTable(schema, 300, p.distinct, /*seed=*/42,
                           /*sorted=*/true);
  InMemoryRun lrun = RunFromSorted(schema, lt);
  InMemoryRun rrun = RunFromSorted(schema, rt);
  RunScan lscan(&schema, &lrun), rscan(&schema, &rrun);
  QueryCounters counters;
  SetOperation setop(&lscan, &rscan, p.type, p.all, &counters);
  RowVec out = DrainValidated(&setop);
  RowVec expected =
      ReferenceSetOp(ToRowVec(lt), ToRowVec(rt), p.type, p.all);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SetOperationTest,
    ::testing::Values(
        SetOpParam{SetOpType::kIntersect, false, 3, "intersect_distinct"},
        SetOpParam{SetOpType::kIntersect, true, 3, "intersect_all"},
        SetOpParam{SetOpType::kExcept, false, 3, "except_distinct"},
        SetOpParam{SetOpType::kExcept, true, 3, "except_all"},
        SetOpParam{SetOpType::kUnion, false, 3, "union_distinct"},
        SetOpParam{SetOpType::kUnion, true, 3, "union_all"},
        SetOpParam{SetOpType::kIntersect, false, 20, "intersect_sparse"},
        SetOpParam{SetOpType::kExcept, true, 20, "except_all_sparse"}),
    [](const ::testing::TestParamInfo<SetOpParam>& info) {
      return info.param.name;
    });

TEST(SetOperation, GroupCountingUsesNoColumnComparisonsOnDuplicates) {
  // Counting group sizes inspects duplicate codes only; with identical
  // single-key streams the totals stay within the 2-way merge budget.
  Schema schema(1);
  RowBuffer t(1);
  for (uint64_t i = 0; i < 100; ++i) {
    for (int d = 0; d < 5; ++d) {
      const uint64_t row[1] = {i};
      t.AppendRow(row);
    }
  }
  InMemoryRun r1 = RunFromSorted(schema, t);
  InMemoryRun r2 = RunFromSorted(schema, t);
  RunScan s1(&schema, &r1), s2(&schema, &r2);
  QueryCounters counters;
  SetOperation setop(&s1, &s2, SetOpType::kIntersect, /*all=*/true, &counters);
  RowVec out = DrainValidated(&setop);
  EXPECT_EQ(out.size(), 500u);
  EXPECT_LE(counters.column_comparisons, 100u);
}

}  // namespace
}  // namespace ovc
