// The ovcd serving layer: wire-protocol round trips (happy path, malformed
// frames, oversized frames, mid-frame disconnects), shared-plan-cache
// semantics (hit / miss / eviction / normalization / disabled), prepared
// statements over the wire, concurrent execution of one cached plan
// checked row-for-row against a serial oracle, and the single-owner
// regressions PR 10 fixed: per-session temp-file sub-managers (first-error
// isolation) and per-query admission slicing of the machine budgets.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/temp_file.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/plan_cache.h"
#include "server/server.h"
#include "server/wire.h"
#include "sql/gen_spec.h"
#include "sql/session.h"
#include "test_util.h"

namespace ovc::server {
namespace {

using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sql::RegisterGeneratedFromSpec(
                    &catalog_, "t(a,b) rows=200 keys=1 distinct=40 seed=7")
                    .ok());
    ASSERT_TRUE(sql::RegisterGeneratedFromSpec(
                    &catalog_, "dim(a,p) rows=40 keys=1 distinct=40 seed=9")
                    .ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  void StartServer(ServerOptions options = ServerOptions()) {
    server_ = std::make_unique<Server>(&catalog_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  Client Connect() {
    Client client;
    const Status status = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(status.ok()) << status.ToString();
    return client;
  }

  /// Serial oracle: the same statement through a direct SqlSession with
  /// the same per-query options every served session runs under.
  RowVec Oracle(const std::string& sql) {
    sql::SqlSession session(&catalog_, server_->session_options());
    sql::SqlResult<sql::QueryResult> result = session.Run(sql);
    EXPECT_TRUE(result.ok());
    if (!result.ok()) return {};
    return ToRowVec(result.value().result.rows);
  }

  sql::Catalog catalog_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

TEST(WireCodec, PayloadRoundTrip) {
  QueryCounters counters;
  counters.row_comparisons = 7;
  counters.rows_spilled = 1u << 30;
  PayloadWriter writer;
  writer.PutU8(3);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(uint64_t{1} << 40);
  writer.PutString("hello");
  writer.PutString("");
  writer.PutCounters(counters);

  PayloadReader reader(writer.str());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s1, s2;
  QueryCounters decoded;
  ASSERT_TRUE(reader.GetU8(&u8));
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetString(&s1));
  ASSERT_TRUE(reader.GetString(&s2));
  ASSERT_TRUE(reader.GetCounters(&decoded));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u8, 3);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, uint64_t{1} << 40);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(decoded == counters);
}

TEST(WireCodec, TruncatedPayloadPoisonsReader) {
  PayloadWriter writer;
  writer.PutU64(42);
  // Chop mid-value: every later getter must fail instead of reading junk.
  PayloadReader reader(std::string_view(writer.str()).substr(0, 5));
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetU64(&v));
  EXPECT_FALSE(reader.ok());
  uint32_t w = 0;
  EXPECT_FALSE(reader.GetU32(&w));
  EXPECT_FALSE(reader.AtEnd());
}

TEST(WireCodec, StringLengthPastPayloadEndFails) {
  PayloadWriter writer;
  writer.PutU32(1000);  // claims 1000 bytes, provides none
  PayloadReader reader(writer.str());
  std::string s;
  EXPECT_FALSE(reader.GetString(&s));
  EXPECT_FALSE(reader.ok());
}

// ---------------------------------------------------------------------------
// SQL normalization (cache keys)
// ---------------------------------------------------------------------------

TEST(NormalizeSql, CollapsesSpellingDifferences) {
  std::string a, b;
  ASSERT_TRUE(NormalizeSql("SELECT a, b FROM t ORDER BY a", &a));
  ASSERT_TRUE(NormalizeSql("select  A ,\n B from T -- trailing\n order by a",
                           &b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "SELECT a , b FROM t ORDER BY a");
}

TEST(NormalizeSql, DistinctStatementsStayDistinct) {
  std::string a, b;
  ASSERT_TRUE(NormalizeSql("SELECT a FROM t", &a));
  ASSERT_TRUE(NormalizeSql("SELECT b FROM t", &b));
  EXPECT_NE(a, b);
}

TEST(NormalizeSql, RejectsUnlexableText) {
  std::string out;
  EXPECT_FALSE(NormalizeSql("SELECT $ FROM t", &out));
}

// ---------------------------------------------------------------------------
// Wire round trips against a live server
// ---------------------------------------------------------------------------

TEST_F(ServerTest, QueryRoundTripMatchesOracle) {
  StartServer();
  const std::string sql = "SELECT a, b FROM t ORDER BY a, b";
  const RowVec expected = Oracle(sql);
  ASSERT_FALSE(expected.empty());

  Client client = Connect();
  Client::Result result;
  ASSERT_TRUE(client.Query(sql, &result).ok());
  ASSERT_TRUE(result.ok) << result.error_message;
  EXPECT_EQ(result.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(result.total_rows, expected.size());
  EXPECT_EQ(result.rows, expected);
}

TEST_F(ServerTest, ExplainTravelsAsText) {
  StartServer();
  Client client = Connect();
  Client::Result result;
  ASSERT_TRUE(client.Query("EXPLAIN SELECT a FROM t ORDER BY a", &result).ok());
  ASSERT_TRUE(result.ok) << result.error_message;
  EXPECT_NE(result.explain_text.find("scan(t)"), std::string::npos)
      << result.explain_text;
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(ServerTest, SqlErrorKeepsConnectionUsable) {
  StartServer();
  Client client = Connect();
  Client::Result result;
  ASSERT_TRUE(client.Query("SELECT bogus FROM t", &result).ok());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error_message.find("bogus"), std::string::npos);
  EXPECT_EQ(result.error_line, 1u);
  EXPECT_GT(result.error_column, 0u);

  // The stream stayed in sync: the same connection still serves.
  ASSERT_TRUE(client.Query("SELECT a FROM t ORDER BY a", &result).ok());
  EXPECT_TRUE(result.ok);
}

TEST_F(ServerTest, UnknownFrameTypeGetsErrorThenClose) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.SendFrame(static_cast<FrameType>(9), "junk").ok());
  Frame frame;
  ASSERT_TRUE(client.ReadOneFrame(&frame).ok());
  EXPECT_EQ(frame.type, FrameType::kError);
  // The server hangs up after a protocol violation.
  EXPECT_FALSE(client.ReadOneFrame(&frame).ok());
}

TEST_F(ServerTest, OversizedFrameGetsErrorThenClose) {
  StartServer();
  Client client = Connect();
  // Header claiming a payload over the 16 MiB ceiling; no payload needed,
  // the server must reject on the header alone.
  const uint32_t huge = kMaxFrameBytes + 1;
  char header[5];
  header[0] = static_cast<char>(huge & 0xff);
  header[1] = static_cast<char>((huge >> 8) & 0xff);
  header[2] = static_cast<char>((huge >> 16) & 0xff);
  header[3] = static_cast<char>((huge >> 24) & 0xff);
  header[4] = 1;  // QUERY
  ASSERT_TRUE(client.SendBytes(header, sizeof(header)).ok());
  Frame frame;
  ASSERT_TRUE(client.ReadOneFrame(&frame).ok());
  EXPECT_EQ(frame.type, FrameType::kError);
  PayloadReader reader(frame.payload);
  uint32_t line = 0, column = 0;
  std::string message;
  ASSERT_TRUE(reader.GetU32(&line) && reader.GetU32(&column) &&
              reader.GetString(&message));
  EXPECT_NE(message.find("frame"), std::string::npos) << message;
  EXPECT_FALSE(client.ReadOneFrame(&frame).ok());
}

TEST_F(ServerTest, MidFrameDisconnectLeavesServerServing) {
  StartServer();
  {
    Client dropper = Connect();
    // A header promising 100 bytes, then only 3, then gone.
    const char partial[8] = {100, 0, 0, 0, 1, 'S', 'E', 'L'};
    ASSERT_TRUE(dropper.SendBytes(partial, sizeof(partial)).ok());
    dropper.Disconnect();
  }
  // The dropped connection must not take the server (or any shared state)
  // with it.
  Client client = Connect();
  Client::Result result;
  ASSERT_TRUE(client.Query("SELECT a FROM t ORDER BY a", &result).ok());
  EXPECT_TRUE(result.ok);
}

TEST_F(ServerTest, MetricsSnapshotOverWire) {
  StartServer();
  Client client = Connect();
  std::string json;
  ASSERT_TRUE(client.Metrics(&json).ok());
  EXPECT_NE(json.find("\"server.connections\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PlanCacheHitMissEviction) {
  ServerOptions options;
  options.plan_cache_capacity = 1;
  StartServer(options);
  PlanCache* cache = server_->plan_cache();
  Client client = Connect();
  Client::Result result;

  ASSERT_TRUE(client.Query("SELECT a FROM t ORDER BY a", &result).ok());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), 0u);

  // A different spelling of the same statement hits.
  ASSERT_TRUE(client.Query("select  A from T order by a", &result).ok());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->size(), 1u);

  // A second statement evicts the first at capacity 1...
  ASSERT_TRUE(client.Query("SELECT b FROM t ORDER BY b", &result).ok());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(cache->misses(), 2u);
  EXPECT_EQ(cache->evictions(), 1u);
  EXPECT_EQ(cache->size(), 1u);

  // ...so the first statement misses again.
  ASSERT_TRUE(client.Query("SELECT a FROM t ORDER BY a", &result).ok());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(cache->misses(), 3u);
}

TEST_F(ServerTest, PlanCacheCapacityZeroDisablesCaching) {
  ServerOptions options;
  options.plan_cache_capacity = 0;
  StartServer(options);
  Client client = Connect();
  Client::Result result;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.Query("SELECT a FROM t ORDER BY a", &result).ok());
    ASSERT_TRUE(result.ok);
  }
  EXPECT_EQ(server_->plan_cache()->hits(), 0u);
  EXPECT_EQ(server_->plan_cache()->misses(), 2u);
  EXPECT_EQ(server_->plan_cache()->size(), 0u);
}

TEST_F(ServerTest, ExplainBypassesCache) {
  StartServer();
  Client client = Connect();
  Client::Result result;
  ASSERT_TRUE(client.Query("EXPLAIN SELECT a FROM t", &result).ok());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(server_->plan_cache()->size(), 0u);
  EXPECT_EQ(server_->plan_cache()->misses(), 0u);
}

TEST_F(ServerTest, CachedResultMatchesUncached) {
  const std::string sql =
      "SELECT t.a, COUNT(*) AS n FROM t INNER JOIN dim ON t.a = dim.a "
      "GROUP BY t.a ORDER BY t.a";
  ServerOptions cold;
  cold.plan_cache_capacity = 0;
  StartServer(cold);
  Client client = Connect();
  Client::Result uncached;
  ASSERT_TRUE(client.Query(sql, &uncached).ok());
  ASSERT_TRUE(uncached.ok);
  server_->Stop();

  StartServer();  // cache on
  Client warm_client = Connect();
  Client::Result first, second;
  ASSERT_TRUE(warm_client.Query(sql, &first).ok());
  ASSERT_TRUE(warm_client.Query(sql, &second).ok());
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_GE(server_->plan_cache()->hits(), 1u);
  EXPECT_EQ(first.rows, uncached.rows);
  EXPECT_EQ(second.rows, uncached.rows);
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PrepareExecuteCloseFlow) {
  StartServer();
  const std::string sql = "SELECT a, b FROM t ORDER BY a, b";
  const RowVec expected = Oracle(sql);

  Client first = Connect();
  Client::PreparedInfo info;
  ASSERT_TRUE(first.Prepare(sql, &info).ok());
  ASSERT_TRUE(info.ok) << info.error_message;
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(info.columns, (std::vector<std::string>{"a", "b"}));

  // Re-executable: same handle, same rows, twice.
  for (int run = 0; run < 2; ++run) {
    Client::Result result;
    ASSERT_TRUE(first.Execute(info.handle, &result).ok());
    ASSERT_TRUE(result.ok) << result.error_message;
    EXPECT_EQ(result.rows, expected);
  }

  // A second connection preparing the same text hits the shared cache.
  Client second = Connect();
  Client::PreparedInfo info2;
  ASSERT_TRUE(second.Prepare(sql, &info2).ok());
  ASSERT_TRUE(info2.ok);
  EXPECT_TRUE(info2.cache_hit);
  Client::Result result;
  ASSERT_TRUE(second.Execute(info2.handle, &result).ok());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.rows, expected);

  ASSERT_TRUE(first.CloseStatement(info.handle).ok());
  // Executing a closed (now unknown) handle errors but keeps the
  // connection alive.
  ASSERT_TRUE(first.Execute(info.handle, &result).ok());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error_message.find("unknown statement handle"),
            std::string::npos);
  ASSERT_TRUE(first.Query("SELECT a FROM t ORDER BY a", &result).ok());
  EXPECT_TRUE(result.ok);
}

TEST_F(ServerTest, PrepareReportsSqlErrors) {
  StartServer();
  Client client = Connect();
  Client::PreparedInfo info;
  ASSERT_TRUE(client.Prepare("SELECT nope FROM t", &info).ok());
  EXPECT_FALSE(info.ok);
  EXPECT_NE(info.error_message.find("nope"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent execution of one cached plan
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ConcurrentClientsShareOneCachedPlan) {
  ServerOptions options;
  options.max_queries = 8;
  StartServer(options);
  const std::string sql =
      "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY a";
  const RowVec expected = Oracle(sql);
  ASSERT_FALSE(expected.empty());

  // Warm the cache so every concurrent execution instantiates the same
  // shared entry.
  {
    Client warmer = Connect();
    Client::Result result;
    ASSERT_TRUE(warmer.Query(sql, &result).ok());
    ASSERT_TRUE(result.ok);
  }

  constexpr int kClients = 4;
  constexpr int kIterations = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int j = 0; j < kIterations; ++j) {
        Client::Result result;
        if (!client.Query(sql, &result).ok() || !result.ok ||
            result.rows != expected) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->plan_cache()->hits(),
            static_cast<uint64_t>(kClients * kIterations));
  EXPECT_EQ(server_->plan_cache()->misses(), 1u);
}

// ---------------------------------------------------------------------------
// Shutdown behavior
// ---------------------------------------------------------------------------

TEST_F(ServerTest, StopDisconnectsIdleClients) {
  StartServer();
  Client client = Connect();
  server_->Stop();
  Client::Result result;
  // Either the send or the response read fails; it must not hang.
  const Status status = client.Query("SELECT a FROM t", &result);
  EXPECT_FALSE(status.ok() && result.ok);
}

// ---------------------------------------------------------------------------
// Single-owner regressions: temp-file sub-managers
// ---------------------------------------------------------------------------

TEST(TempSubManager, NestsDisjointScratchDirs) {
  TempFileManager root;
  TempFileManager sub1(&root);
  TempFileManager sub2(&root);
  EXPECT_NE(sub1.dir(), sub2.dir());
  EXPECT_EQ(sub1.dir().find(root.dir()), 0u)
      << sub1.dir() << " not under " << root.dir();
  EXPECT_EQ(sub2.dir().find(root.dir()), 0u);
  EXPECT_TRUE(std::filesystem::is_directory(sub1.dir()));
  // Paths from different sub-managers never collide even with identical
  // tags and ids.
  EXPECT_NE(sub1.NewPath("run"), sub2.NewPath("run"));
}

TEST(TempSubManager, FirstErrorSlotIsPerSubManager) {
  TempFileManager root;
  TempFileManager session_a(&root);
  TempFileManager session_b(&root);

  // Query A's spill failure lands in A's slot only: B's concurrent query
  // and the server's root manager stay clean (the pre-PR-10 process-wide
  // manager bled this across sessions).
  session_a.RecordError(Status::IoError("disk full under session a"));
  EXPECT_FALSE(session_a.first_error().ok());
  EXPECT_TRUE(session_b.first_error().ok());
  EXPECT_TRUE(root.first_error().ok());

  // B's per-run ClearError must not wipe A's pending error either.
  session_b.ClearError();
  EXPECT_FALSE(session_a.first_error().ok());
  EXPECT_EQ(session_a.first_error().message(), "disk full under session a");
}

TEST(TempSubManager, DestructionRemovesOnlyOwnTree) {
  TempFileManager root;
  std::string sub_dir;
  {
    TempFileManager sub(&root);
    sub_dir = sub.dir();
    ASSERT_TRUE(std::filesystem::is_directory(sub_dir));
  }
  EXPECT_FALSE(std::filesystem::exists(sub_dir));
  EXPECT_TRUE(std::filesystem::is_directory(root.dir()));
}

// ---------------------------------------------------------------------------
// Single-owner regressions: admission slicing
// ---------------------------------------------------------------------------

TEST(AdmissionSlice, DividesMachineBudgetsAcrossSlots) {
  plan::PlanExecutor::Options machine;
  machine.planner.parallelism = 16;  // overwritten by the per-query value
  machine.planner.hash_memory_rows = uint64_t{1} << 20;
  machine.planner.sort_config.memory_rows = uint64_t{1} << 20;

  const plan::PlanExecutor::Options sliced =
      AdmissionController::Slice(machine, /*slots=*/4, /*workers_per_query=*/2);
  EXPECT_EQ(sliced.planner.parallelism, 2u);
  EXPECT_EQ(sliced.planner.hash_memory_rows, uint64_t{1} << 18);
  EXPECT_EQ(sliced.planner.sort_config.memory_rows, uint64_t{1} << 18);
}

TEST(AdmissionSlice, FloorsDegenerateBudgets) {
  plan::PlanExecutor::Options machine;
  machine.planner.hash_memory_rows = 100;
  machine.planner.sort_config.memory_rows = 100;
  const plan::PlanExecutor::Options sliced =
      AdmissionController::Slice(machine, /*slots=*/1000,
                                 /*workers_per_query=*/0);
  EXPECT_EQ(sliced.planner.parallelism, 1u);
  EXPECT_EQ(sliced.planner.hash_memory_rows,
            AdmissionController::kMinHashMemoryRows);
  EXPECT_EQ(sliced.planner.sort_config.memory_rows,
            AdmissionController::kMinSortMemoryRows);
}

TEST(Admission, GateBlocksAtCapacityAndReleases) {
  AdmissionController gate(2);
  ASSERT_TRUE(gate.Acquire());
  ASSERT_TRUE(gate.Acquire());
  EXPECT_EQ(gate.active(), 2u);

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    if (gate.Acquire()) {
      admitted.store(true);
      gate.Release();
    }
  });
  // The third acquire must block while both slots are held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(gate.active(), 2u);

  gate.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  gate.Release();
  EXPECT_EQ(gate.active(), 0u);
  EXPECT_EQ(gate.high_water(), 2u);
}

TEST(Admission, ShutdownUnblocksWaiters) {
  AdmissionController gate(1);
  ASSERT_TRUE(gate.Acquire());
  std::thread waiter([&] { EXPECT_FALSE(gate.Acquire()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Shutdown();
  waiter.join();
  EXPECT_FALSE(gate.Acquire());
  gate.Release();
}

}  // namespace
}  // namespace ovc::server
