// Planner unit tests: order-property propagation, interesting orders, and
// physical algorithm choice (sort elision when order + codes are available,
// hash fallback when they are not).

#include <memory>

#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "plan/order_property.h"
#include "plan/physical_plan.h"
#include "storage/btree.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using plan::BufferSource;
using plan::BTreeSource;
using plan::InferOrderProperty;
using plan::LogicalNode;
using plan::LogicalOp;
using plan::OrderProperty;
using plan::OrderRequirement;
using plan::PhysicalAlg;
using plan::PhysicalPlan;
using plan::PlanBuilder;
using plan::Planner;
using plan::PlannerOptions;

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : schema_(2, 1),
        key_schema_(2, 0),
        table_(testing::MakeTable(schema_, 500, 4, /*seed=*/1)),
        key_table_(testing::MakeTable(key_schema_, 500, 4, /*seed=*/2)),
        tree_(&schema_, &counters_) {
    for (size_t i = 0; i < table_.size(); ++i) tree_.Insert(table_.row(i));
  }

  PhysicalPlan Plan(LogicalNode* root, PlannerOptions options = {}) {
    Planner planner(&counters_, &temp_, options);
    return planner.Plan(root);
  }

  Schema schema_;      // 2 keys + 1 payload
  Schema key_schema_;  // 2 keys, no payload
  RowBuffer table_;
  RowBuffer key_table_;
  QueryCounters counters_;
  TempFileManager temp_;
  BTree tree_;
};

TEST(OrderPropertyTest, Satisfaction) {
  OrderProperty unsorted = OrderProperty::Unsorted();
  OrderProperty sorted2 = OrderProperty::Sorted(2, /*ovc=*/false);
  OrderProperty coded2 = OrderProperty::Sorted(2, /*ovc=*/true);

  EXPECT_FALSE(unsorted.sorted());
  EXPECT_TRUE(sorted2.SortedOn(1));
  EXPECT_TRUE(sorted2.SortedOn(2));
  EXPECT_FALSE(sorted2.SortedOn(3));
  EXPECT_FALSE(sorted2.SortedWithCodes(2));
  EXPECT_TRUE(coded2.SortedWithCodes(2));

  EXPECT_TRUE(OrderRequirement::None().SatisfiedBy(unsorted));
  EXPECT_FALSE(OrderRequirement::Codes(1).SatisfiedBy(sorted2));
  EXPECT_TRUE(OrderRequirement::Codes(1).SatisfiedBy(coded2));
  OrderRequirement order_only{2, false};
  EXPECT_TRUE(order_only.SatisfiedBy(sorted2));

  EXPECT_EQ(coded2.ToString(), "sorted(2)+ovc");
  EXPECT_EQ(unsorted.ToString(), "unsorted");
}

TEST_F(PlannerTest, ScanPropertiesComeFromTheSource) {
  auto unsorted =
      PlanBuilder::Scan(BufferSource("t", &schema_, &table_)).Build();
  auto sorted = PlanBuilder::Scan(BTreeSource("bt", &tree_)).Build();

  EXPECT_EQ(InferOrderProperty(*unsorted, {}), OrderProperty::Unsorted());
  EXPECT_EQ(InferOrderProperty(*sorted, {}),
            OrderProperty::Sorted(2, /*ovc=*/true));
}

TEST_F(PlannerTest, SortIsElidedWhenInputSortedWithCodes) {
  auto logical = PlanBuilder::Scan(BTreeSource("bt", &tree_)).Sort().Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kElidedSort));
  EXPECT_FALSE(plan.Uses(PhysicalAlg::kSort));
  EXPECT_EQ(plan.elided_sorts(), 1u);
  EXPECT_EQ(plan.inserted_sorts(), 0u);
  EXPECT_EQ(plan.root_order(), OrderProperty::Sorted(2, true));
}

TEST_F(PlannerTest, SortMaterializesOverUnsortedInput) {
  auto logical =
      PlanBuilder::Scan(BufferSource("t", &schema_, &table_)).Sort().Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kSort));
  EXPECT_EQ(plan.explicit_sorts(), 1u);
  EXPECT_EQ(plan.root_order(), OrderProperty::Sorted(2, true));
}

TEST_F(PlannerTest, JoinPicksMergeWhenBothInputsSortedWithCodes) {
  auto logical = PlanBuilder::Scan(BTreeSource("l", &tree_))
                     .Join(PlanBuilder::Scan(BTreeSource("r", &tree_)),
                           JoinType::kInner)
                     .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kMergeJoin));
  EXPECT_EQ(plan.inserted_sorts(), 0u);
  EXPECT_TRUE(plan.root_order().SortedWithCodes(2));
}

TEST_F(PlannerTest, JoinFallsBackToGraceHashOverUnsortedInputs) {
  auto logical =
      PlanBuilder::Scan(BufferSource("l", &schema_, &table_))
          .Join(PlanBuilder::Scan(BufferSource("r", &schema_, &table_)),
                JoinType::kInner)
          .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kGraceHashJoin));
  EXPECT_EQ(plan.inserted_sorts(), 0u);
  EXPECT_EQ(plan.root_order(), OrderProperty::Unsorted());
}

TEST_F(PlannerTest, JoinPicksOrderPreservingHashWhenOnlyProbeSorted) {
  auto logical =
      PlanBuilder::Scan(BTreeSource("l", &tree_))
          .Join(PlanBuilder::Scan(BufferSource("r", &schema_, &table_)),
                JoinType::kInner)
          .Build();
  // The in-memory hash join aborts past its build budget, so it is opt-in.
  PlannerOptions options;
  options.assume_build_fits_memory = true;
  PhysicalPlan plan = Plan(logical.get(), options);

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kOrderPreservingHashJoin));
  EXPECT_EQ(plan.inserted_sorts(), 0u);
  // The order-preserving hash join carries probe order and codes through.
  EXPECT_TRUE(plan.root_order().SortedWithCodes(2));
}

TEST_F(PlannerTest, SortedProbeOverUnsortedBuildSortsOnlyTheBuildByDefault) {
  auto logical =
      PlanBuilder::Scan(BTreeSource("l", &tree_))
          .Join(PlanBuilder::Scan(BufferSource("r", &schema_, &table_)),
                JoinType::kInner)
          .Build();
  // Robust default: no residency assumption, so the unsorted build side is
  // sorted (spilling gracefully) and the probe's order is reused as-is.
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kMergeJoin));
  EXPECT_FALSE(plan.Uses(PhysicalAlg::kOrderPreservingHashJoin));
  EXPECT_FALSE(plan.Uses(PhysicalAlg::kGraceHashJoin));
  EXPECT_EQ(plan.inserted_sorts(), 1u);  // only the build side
  EXPECT_TRUE(plan.root_order().SortedWithCodes(2));
}

TEST_F(PlannerTest, PreferSortBasedInsertsSortsForMergeJoin) {
  auto logical =
      PlanBuilder::Scan(BufferSource("l", &schema_, &table_))
          .Join(PlanBuilder::Scan(BufferSource("r", &schema_, &table_)),
                JoinType::kInner)
          .Build();
  PlannerOptions options;
  options.prefer_sort_based = true;
  PhysicalPlan plan = Plan(logical.get(), options);

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kMergeJoin));
  EXPECT_EQ(plan.inserted_sorts(), 2u);
  EXPECT_TRUE(plan.root_order().SortedWithCodes(2));
}

TEST_F(PlannerTest, FullOuterJoinHasNoHashFallback) {
  auto logical =
      PlanBuilder::Scan(BufferSource("l", &schema_, &table_))
          .Join(PlanBuilder::Scan(BufferSource("r", &schema_, &table_)),
                JoinType::kFullOuter)
          .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kMergeJoin));
  EXPECT_EQ(plan.inserted_sorts(), 2u);
}

TEST_F(PlannerTest, AggregateStreamsOverSortedInput) {
  auto logical = PlanBuilder::Scan(BTreeSource("bt", &tree_))
                     .Aggregate(1, {{AggFn::kCount, 0}})
                     .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kInStreamAggregate));
  EXPECT_EQ(plan.inserted_sorts(), 0u);
  EXPECT_EQ(plan.root_order(), OrderProperty::Sorted(1, true));
}

TEST_F(PlannerTest, AggregateHashesOverUnsortedInputWithoutOrderInterest) {
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
                     .Aggregate(1, {{AggFn::kCount, 0}})
                     .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kHashAggregate));
  EXPECT_EQ(plan.root_order(), OrderProperty::Unsorted());
}

TEST_F(PlannerTest, InterestingOrderSwitchesAggregateToInSort) {
  // Distinct above wants order + codes, so the aggregation below absorbs
  // the disorder itself instead of hashing -- no explicit sort anywhere.
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
                     .Aggregate(1, {{AggFn::kCount, 0}})
                     .Distinct()
                     .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kInSortAggregate));
  EXPECT_TRUE(plan.Uses(PhysicalAlg::kDedup));
  EXPECT_FALSE(plan.Uses(PhysicalAlg::kSort));
  EXPECT_EQ(plan.inserted_sorts(), 0u);
  EXPECT_TRUE(plan.root_order().SortedWithCodes(1));
}

TEST_F(PlannerTest, DistinctUsesCodeOnlyDedupOverSortedInput) {
  auto logical =
      PlanBuilder::Scan(BTreeSource("bt", &tree_)).Distinct().Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kDedup));
  EXPECT_EQ(plan.inserted_sorts(), 0u);
}

TEST_F(PlannerTest, DistinctHashesOverUnsortedKeyOnlyInput) {
  auto logical =
      PlanBuilder::Scan(BufferSource("t", &key_schema_, &key_table_))
          .Distinct()
          .Build();
  PhysicalPlan plan = Plan(logical.get());
  EXPECT_TRUE(plan.Uses(PhysicalAlg::kHashDistinct));

  PlannerOptions options;
  options.prefer_sort_based = true;
  PhysicalPlan sort_plan = Plan(logical.get(), options);
  EXPECT_TRUE(sort_plan.Uses(PhysicalAlg::kInSortDistinct));
  EXPECT_TRUE(sort_plan.root_order().SortedWithCodes(2));
}

TEST_F(PlannerTest, DistinctWithPayloadsSortsThenDedups) {
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
                     .Distinct()
                     .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kDedup));
  EXPECT_EQ(plan.inserted_sorts(), 1u);
}

TEST_F(PlannerTest, SetOpInsertsSortsOnlyWhereNeeded) {
  BTree key_tree(&key_schema_, &counters_);
  for (size_t i = 0; i < key_table_.size(); ++i) {
    key_tree.Insert(key_table_.row(i));
  }
  auto logical =
      PlanBuilder::Scan(BTreeSource("l", &key_tree))
          .SetOp(PlanBuilder::Scan(BufferSource("r", &key_schema_,
                                                &key_table_)),
                 SetOpType::kIntersect, /*all=*/false)
          .Build();
  PhysicalPlan plan = Plan(logical.get());

  EXPECT_TRUE(plan.Uses(PhysicalAlg::kSetOperation));
  EXPECT_EQ(plan.inserted_sorts(), 1u);  // only the buffer side
  EXPECT_TRUE(plan.root_order().SortedWithCodes(2));
}

TEST_F(PlannerTest, RequirementAnnotationsFollowInterestingOrders) {
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema_, &table_))
                     .Filter([](const uint64_t*) { return true; })
                     .Aggregate(1, {{AggFn::kCount, 0}})
                     .Distinct()
                     .Build();
  plan::InferOrderRequirements(logical.get());

  const LogicalNode* distinct = logical.get();
  const LogicalNode* aggregate = distinct->children[0].get();
  const LogicalNode* filter = aggregate->children[0].get();
  const LogicalNode* scan = filter->children[0].get();

  // Distinct wants its child sorted with codes on the aggregate's full key.
  EXPECT_EQ(aggregate->required.prefix, 1u);
  EXPECT_TRUE(aggregate->required.needs_ovc);
  // The aggregation wants its child ordered on the grouping prefix, and
  // the filter passes that wish through to the scan.
  EXPECT_EQ(filter->required.prefix, 1u);
  EXPECT_EQ(scan->required.prefix, 1u);
}

TEST_F(PlannerTest, InferenceMatchesConstructedPlans) {
  auto make_plans = [&](PlannerOptions options) {
    std::vector<std::unique_ptr<LogicalNode>> plans;
    plans.push_back(
        PlanBuilder::Scan(BufferSource("t", &schema_, &table_)).Sort().Build());
    plans.push_back(
        PlanBuilder::Scan(BTreeSource("bt", &tree_)).Sort().Build());
    plans.push_back(
        PlanBuilder::Scan(BufferSource("l", &schema_, &table_))
            .Join(PlanBuilder::Scan(BTreeSource("r", &tree_)),
                  JoinType::kInner)
            .Aggregate(1, {{AggFn::kSum, 2}})
            .Distinct()
            .Build());
    plans.push_back(
        PlanBuilder::Scan(BufferSource("t", &key_schema_, &key_table_))
            .Distinct()
            .TopK(10)
            .Build());
    for (auto& logical : plans) {
      PhysicalPlan plan = Plan(logical.get(), options);
      EXPECT_EQ(InferOrderProperty(*logical, options), plan.root_order())
          << plan.ToString();
    }
  };
  make_plans(PlannerOptions());
  PlannerOptions sort_based;
  sort_based.prefer_sort_based = true;
  make_plans(sort_based);
}

TEST_F(PlannerTest, ExplainMentionsChosenAlgorithms) {
  auto logical = PlanBuilder::Scan(BTreeSource("bt", &tree_))
                     .Sort()
                     .Aggregate(1, {{AggFn::kCount, 0}})
                     .Build();
  PhysicalPlan plan = Plan(logical.get());
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("in-stream-aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("elided-sort"), std::string::npos) << text;
  EXPECT_NE(text.find("bt"), std::string::npos) << text;
}

}  // namespace
}  // namespace ovc
