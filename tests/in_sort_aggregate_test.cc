// In-sort aggregation (early aggregation during run generation and
// merging) and Napa-style aggregating LSM maintenance.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/in_sort_aggregate.h"
#include "exec/scan.h"
#include "sort/group_collapse.h"
#include "storage/lsm.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;

struct IsaParam {
  uint64_t rows;
  uint64_t distinct;
  uint64_t memory_rows;
  const char* name;
};

class InSortAggregateTest : public ::testing::TestWithParam<IsaParam> {};

TEST_P(InSortAggregateTest, MatchesReferenceWithValidCodes) {
  const auto p = GetParam();
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, p.rows, p.distinct, /*seed=*/401);
  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &table);
  SortConfig config;
  config.memory_rows = p.memory_rows;
  config.fan_in = 4;  // exercise cascaded, collapsing merges
  InSortAggregate agg(&scan, /*group_prefix=*/2,
                      {{AggFn::kCount, 0},
                       {AggFn::kSum, 2},
                       {AggFn::kMin, 2},
                       {AggFn::kMax, 2}},
                      &counters, &temp, config);
  RowVec out = DrainValidated(&agg);

  // Reference.
  struct Ref {
    uint64_t count = 0, sum = 0;
    uint64_t min = ~uint64_t{0}, max = 0;
  };
  std::map<std::pair<uint64_t, uint64_t>, Ref> reference;
  for (size_t i = 0; i < table.size(); ++i) {
    Ref& r = reference[{table.row(i)[0], table.row(i)[1]}];
    const uint64_t v = table.row(i)[2];
    ++r.count;
    r.sum += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  }
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& row : out) {
    const Ref& r = reference[{row[0], row[1]}];
    EXPECT_EQ(row[2], r.count);
    EXPECT_EQ(row[3], r.sum);
    EXPECT_EQ(row[4], r.min);
    EXPECT_EQ(row[5], r.max);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InSortAggregateTest,
    ::testing::Values(IsaParam{5000, 8, 256, "spilling"},
                      IsaParam{5000, 8, 1 << 20, "in_memory"},
                      IsaParam{20000, 4, 128, "cascading"},
                      IsaParam{100, 100, 16, "mostly_distinct"},
                      IsaParam{1, 2, 16, "single_row"}),
    [](const ::testing::TestParamInfo<IsaParam>& info) {
      return info.param.name;
    });

TEST(InSortAggregate, DuplicateRemovalSpillsGroupsNotRows) {
  // With heavy duplication, early collapse spills far fewer rows than a
  // sort-then-dedup pipeline would: at most one row per group per run.
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 20000, 3, /*seed=*/402);  // 9 groups
  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &table);
  SortConfig config;
  config.memory_rows = 1000;
  InSortAggregate dedup(&scan, /*group_prefix=*/2, {}, &counters, &temp,
                        config);
  RowVec out = DrainValidated(&dedup);
  EXPECT_EQ(out.size(), 9u);
  // 20 runs x at most 9 groups each, not 20000 rows.
  EXPECT_LE(counters.rows_spilled, 20u * 9u);
}

TEST(InSortAggregate, RescanAfterClose) {
  Schema schema(1, 1);
  RowBuffer table = MakeTable(schema, 500, 4, /*seed=*/403);
  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &table);
  InSortAggregate agg(&scan, 1, {{AggFn::kCount, 0}}, &counters, &temp);
  RowVec first = DrainValidated(&agg);
  RowVec second = DrainValidated(&agg);
  EXPECT_EQ(first, second);
}

TEST(CollapsingSink, FoldsAdjacentDuplicates) {
  Schema schema(1, 1);
  OvcCodec codec(&schema);
  InMemoryRun out(2);
  class Collect : public RunSink {
   public:
    explicit Collect(InMemoryRun* run) : run_(run) {}
    void Accept(const uint64_t* row, Ovc code) override {
      run_->Append(row, code);
    }
    InMemoryRun* run_;
  } sink(&out);
  CollapsingSink collapser(&schema, {StateMergeFn::kSum}, &sink);
  const uint64_t r1[2] = {5, 1};
  const uint64_t r2[2] = {5, 2};
  const uint64_t r3[2] = {7, 10};
  collapser.Accept(r1, codec.MakeInitial(r1));
  collapser.Accept(r2, codec.DuplicateCode());
  collapser.Accept(r3, codec.Make(0, 7));
  collapser.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.row(0)[0], 5u);
  EXPECT_EQ(out.row(0)[1], 3u);  // 1 + 2
  EXPECT_EQ(out.row(1)[0], 7u);
  EXPECT_EQ(out.row(1)[1], 10u);
  EXPECT_EQ(collapser.groups(), 2u);
}

TEST(LsmAggregating, CompactionMaintainsMaterializedView) {
  // Napa-style: ingest (key, delta) pairs; the forest maintains
  // sum(delta) per key through flushes, compactions, and scans.
  Schema schema(2, 1);
  QueryCounters counters;
  TempFileManager temp;
  LsmForest::Options options;
  options.memtable_rows = 128;
  options.collapse = true;
  options.collapse_fns = {StateMergeFn::kSum};
  LsmForest forest(&schema, &counters, &temp, options);

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> reference;
  Rng rng(404);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k0 = rng.Uniform(8), k1 = rng.Uniform(8);
    const uint64_t delta = rng.Uniform(100);
    const uint64_t row[3] = {k0, k1, delta};
    forest.Insert(row);
    reference[{k0, k1}] += delta;
  }

  auto check = [&] {
    auto scan = forest.ScanAll();
    RowVec out = DrainValidated(scan.get());
    ASSERT_EQ(out.size(), reference.size());
    for (const auto& row : out) {
      EXPECT_EQ(row[2], (reference[{row[0], row[1]}]));
    }
  };
  check();            // across many runs, collapsed at scan time
  forest.CompactAll();
  EXPECT_EQ(forest.run_count(), 1u);
  check();            // fully collapsed into one run

  // The compacted run holds exactly one row per key.
  EXPECT_LE(forest.run_count(), 1u);
}

TEST(LsmAggregating, CollapseReducesCompactedSize) {
  Schema schema(1, 1);
  TempFileManager temp;
  QueryCounters counters;
  LsmForest::Options options;
  options.memtable_rows = 64;
  options.collapse = true;
  options.collapse_fns = {StateMergeFn::kSum};
  LsmForest forest(&schema, &counters, &temp, options);
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t row[2] = {i % 10, 1};
    forest.Insert(row);
  }
  forest.CompactAll();
  auto scan = forest.ScanAll();
  RowVec out = DrainValidated(scan.get());
  ASSERT_EQ(out.size(), 10u);
  for (const auto& row : out) {
    EXPECT_EQ(row[1], 1000u);  // count per key
  }
}

}  // namespace
}  // namespace ovc
