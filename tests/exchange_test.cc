// Order-preserving shuffle (Section 4.10): splitting exchange with
// per-partition filter-theorem codes, merging exchange (threaded and
// inline), child lifecycle, re-open, and threaded shutdown paths.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "exec/exchange.h"
#include "exec/scan.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

/// Pass-through wrapper that counts lifecycle calls on the wrapped child.
class LifecycleSpy : public Operator {
 public:
  explicit LifecycleSpy(Operator* child) : child_(child) {}

  void Open() override {
    ++opens;
    child_->Open();
  }
  bool Next(RowRef* out) override { return child_->Next(out); }
  uint32_t NextBatch(RowBlock* out) override {
    return child_->NextBatch(out);
  }
  void Close() override {
    ++closes;
    child_->Close();
  }
  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return child_->sorted(); }
  bool has_ovc() const override { return child_->has_ovc(); }

  int opens = 0;
  int closes = 0;

 private:
  Operator* child_;
};

InMemoryRun RunFromSorted(const Schema& schema, const RowBuffer& sorted) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < sorted.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(sorted.row(i))
                      : codec.MakeFromRow(
                            sorted.row(i),
                            cmp.FirstDifference(sorted.row(i - 1),
                                                sorted.row(i), 0));
    run.Append(sorted.row(i), code);
  }
  return run;
}

struct SplitParam {
  SplitExchange::Policy policy;
  uint32_t partitions;
  const char* name;
};

class SplitExchangeTest : public ::testing::TestWithParam<SplitParam> {};

TEST_P(SplitExchangeTest, PartitionsAreValidStreamsCoveringInput) {
  const auto p = GetParam();
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 1200, 4, /*seed=*/91, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  std::vector<uint64_t> bounds;
  if (p.policy == SplitExchange::Policy::kRangeFirstColumn) {
    for (uint32_t b = 1; b < p.partitions; ++b) bounds.push_back(b);
  }
  QueryCounters counters;
  SplitExchange split(&scan, p.partitions, p.policy, &counters, bounds);

  RowVec all;
  for (uint32_t i = 0; i < p.partitions; ++i) {
    RowVec part = DrainValidated(split.partition(i));
    for (auto& row : part) all.push_back(std::move(row));
  }
  RowVec expected = ToRowVec(table);
  Canonicalize(&all);
  Canonicalize(&expected);
  EXPECT_EQ(all, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SplitExchangeTest,
    ::testing::Values(
        SplitParam{SplitExchange::Policy::kHashKey, 4, "hash4"},
        SplitParam{SplitExchange::Policy::kRoundRobin, 3, "roundrobin3"},
        SplitParam{SplitExchange::Policy::kRangeFirstColumn, 4, "range4"},
        SplitParam{SplitExchange::Policy::kHashKey, 1, "hash1"}),
    [](const ::testing::TestParamInfo<SplitParam>& info) {
      return info.param.name;
    });

TEST(SplitExchange, InterleavedConsumptionStaysValid) {
  // Consume partitions round-robin a row at a time: buffering must keep
  // every partition stream independently valid.
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 300, 3, /*seed=*/92, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  SplitExchange split(&scan, 3, SplitExchange::Policy::kRoundRobin, nullptr);
  std::vector<OvcStreamChecker> checkers(3, OvcStreamChecker(&schema));
  std::vector<bool> done(3, false);
  uint64_t total = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t i = 0; i < 3; ++i) {
      if (done[i]) continue;
      RowRef ref;
      if (split.partition(i)->Next(&ref)) {
        ASSERT_TRUE(checkers[i].Observe(ref.cols, ref.ovc))
            << checkers[i].error();
        ++total;
        progress = true;
      } else {
        done[i] = true;
      }
    }
  }
  EXPECT_EQ(total, 300u);
}

TEST(SplitExchange, ChildObservesBalancedOpenClose) {
  // The shared child is opened lazily once per cycle and closed exactly
  // once -- when every partition stream has been closed -- even when the
  // partitions are drained strictly one after another (rows for later
  // partitions stay buffered across the earlier partitions' Close()).
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 400, 4, /*seed=*/7, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  LifecycleSpy spy(&scan);
  SplitExchange split(&spy, 3, SplitExchange::Policy::kRoundRobin, nullptr);

  for (int cycle = 1; cycle <= 2; ++cycle) {
    RowVec all;
    for (uint32_t i = 0; i < 3; ++i) {
      RowVec part = DrainValidated(split.partition(i));
      for (auto& row : part) all.push_back(std::move(row));
      if (i + 1 < 3) {
        // Mid-cycle: some streams closed, others not -- the child must
        // stay open (its buffered rows feed the remaining partitions).
        EXPECT_EQ(spy.closes, cycle - 1) << "cycle " << cycle;
      }
    }
    // All three streams closed: the child observed exactly one
    // Open()/Close() pair per cycle, and a fresh cycle rescans it.
    EXPECT_EQ(spy.opens, cycle);
    EXPECT_EQ(spy.closes, cycle);
    RowVec expected = ToRowVec(table);
    Canonicalize(&all);
    Canonicalize(&expected);
    EXPECT_EQ(all, expected) << "cycle " << cycle;
  }
}

TEST(SplitExchange, UnsortedChildFeedsParallelSortShape) {
  // An unsorted child is accepted (the front half of the parallel-sort
  // shape): partition streams are unsorted, code-free, and cover the
  // input.
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 500, 5, /*seed=*/17, /*sorted=*/false);
  BufferScan scan(&schema, &table);
  SplitExchange split(&scan, 4, SplitExchange::Policy::kRoundRobin, nullptr);
  RowVec all;
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(split.partition(i)->sorted());
    EXPECT_FALSE(split.partition(i)->has_ovc());
    RowVec part = DrainValidated(split.partition(i), /*check_codes=*/false);
    for (auto& row : part) all.push_back(std::move(row));
  }
  RowVec expected = ToRowVec(table);
  Canonicalize(&all);
  Canonicalize(&expected);
  EXPECT_EQ(all, expected);
}

TEST(SplitExchange, BatchPullMatchesRowPull) {
  // The partition streams' real NextBatch path yields exactly the
  // row-at-a-time stream, block boundary codes included.
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 700, 4, /*seed=*/23, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);

  RunScan row_scan(&schema, &run);
  SplitExchange row_split(&row_scan, 3, SplitExchange::Policy::kHashKey,
                          nullptr);
  RunScan batch_scan(&schema, &run);
  SplitExchange batch_split(&batch_scan, 3, SplitExchange::Policy::kHashKey,
                            nullptr);

  for (uint32_t i = 0; i < 3; ++i) {
    RowVec expected = DrainValidated(row_split.partition(i));
    Operator* part = batch_split.partition(i);
    part->Open();
    OvcStreamChecker checker(&schema);
    RowVec got;
    RowBlock block(schema.total_columns(), /*capacity_rows=*/64);
    uint32_t n;
    while ((n = part->NextBatch(&block)) > 0) {
      for (uint32_t r = 0; r < n; ++r) {
        ASSERT_TRUE(checker.Observe(block.row(r), block.code(r)))
            << checker.error();
        got.emplace_back(block.row(r),
                         block.row(r) + schema.total_columns());
      }
    }
    part->Close();
    EXPECT_EQ(got, expected) << "partition " << i;
  }
}

class MergeExchangeTest : public ::testing::TestWithParam<bool> {};

TEST_P(MergeExchangeTest, MergesPartitionsBackToOneValidStream) {
  const bool threaded = GetParam();
  Schema schema(3, 1);
  const uint32_t kInputs = 5;
  std::vector<RowBuffer> tables;
  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<std::unique_ptr<RunScan>> scans;
  std::vector<Operator*> inputs;
  RowVec expected;
  for (uint32_t i = 0; i < kInputs; ++i) {
    tables.push_back(
        MakeTable(schema, 200 + 50 * i, 4, /*seed=*/100 + i, /*sorted=*/true));
  }
  for (uint32_t i = 0; i < kInputs; ++i) {
    for (const auto& row : ToRowVec(tables[i])) expected.push_back(row);
    runs.push_back(
        std::make_unique<InMemoryRun>(RunFromSorted(schema, tables[i])));
    scans.push_back(std::make_unique<RunScan>(&schema, runs.back().get()));
    inputs.push_back(scans.back().get());
  }
  QueryCounters counters;
  MergeExchange::Options options;
  options.threaded = threaded;
  options.batch_rows = 64;
  MergeExchange exchange(inputs, &counters, options);
  RowVec out = DrainValidated(&exchange);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, MergeExchangeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "threaded" : "inline";
                         });

// Shared fixture bits for the threaded-lifecycle tests.
struct MergeInputs {
  MergeInputs(uint32_t inputs, uint64_t rows_each, uint32_t seed_base)
      : schema(2) {
    for (uint32_t i = 0; i < inputs; ++i) {
      tables.push_back(MakeTable(schema, rows_each, 4,
                                 /*seed=*/seed_base + i, /*sorted=*/true));
    }
    for (uint32_t i = 0; i < inputs; ++i) {
      runs.push_back(
          std::make_unique<InMemoryRun>(RunFromSorted(schema, tables[i])));
      scans.push_back(std::make_unique<RunScan>(&schema, runs.back().get()));
      ops.push_back(scans.back().get());
    }
  }

  Schema schema;
  std::vector<RowBuffer> tables;
  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<std::unique_ptr<RunScan>> scans;
  std::vector<Operator*> ops;
};

TEST(MergeExchange, ReopenAfterCloseRestartsCleanly) {
  // A second Open() after Close() must not stack fresh queues, producers,
  // and sources onto leftover state: both cycles must produce the exact
  // same valid stream (RunScan supports rescans). Holds in both modes.
  for (bool threaded : {true, false}) {
    MergeInputs in(3, 300, /*seed_base=*/40);
    MergeExchange::Options options;
    options.threaded = threaded;
    options.batch_rows = 32;
    MergeExchange exchange(in.ops, nullptr, options);
    RowVec first = DrainValidated(&exchange);
    EXPECT_EQ(first.size(), 900u);
    RowVec second = DrainValidated(&exchange);
    EXPECT_EQ(first, second) << "threaded=" << threaded;
  }
}

TEST(MergeExchange, ReopenWithoutCloseResetsLeftoverState) {
  // Open() while a previous cycle is still live (no Close() in between)
  // resets that cycle first instead of appending to it -- including
  // closing inline-opened inputs, so every input sees balanced
  // Open()/Close() in both modes.
  for (bool threaded : {true, false}) {
    MergeInputs in(3, 300, /*seed_base=*/50);
    std::vector<std::unique_ptr<LifecycleSpy>> spies;
    std::vector<Operator*> spied;
    for (Operator* op : in.ops) {
      spies.push_back(std::make_unique<LifecycleSpy>(op));
      spied.push_back(spies.back().get());
    }
    MergeExchange::Options options;
    options.threaded = threaded;
    MergeExchange exchange(spied, nullptr, options);
    exchange.Open();
    RowRef ref;
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(exchange.Next(&ref));
    // Re-open mid-stream; the fresh cycle must deliver the full stream.
    RowVec all = DrainValidated(&exchange);
    EXPECT_EQ(all.size(), 900u) << "threaded=" << threaded;
    for (const auto& spy : spies) {
      EXPECT_EQ(spy->opens, 2) << "threaded=" << threaded;
      EXPECT_EQ(spy->closes, 2) << "threaded=" << threaded;
    }
  }
}

TEST(MergeExchange, CopyingConsumerSurvivesBatchBoundaries) {
  // Regression for the RowRef lifetime contract (exec/operator.h): a
  // queue-fed merge frees a producer batch when it pops the next one, so a
  // consumer that copies each row before the next pull -- across many
  // batch boundaries (tiny batch_rows forces them) -- must see the intact
  // stream.
  MergeInputs in(4, 250, /*seed_base=*/60);
  MergeExchange::Options options;
  options.batch_rows = 3;  // hundreds of boundaries
  options.queue_batches = 2;
  MergeExchange exchange(in.ops, nullptr, options);
  RowVec out = DrainValidated(&exchange);  // copies every row, checks codes
  RowVec expected;
  for (const auto& t : in.tables) {
    for (const auto& row : ToRowVec(t)) expected.push_back(row);
  }
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

TEST(MergeExchange, NextBatchDrainsWholeBlocks) {
  // The devirtualized block output path: NextBatch pulls whole blocks out
  // of the merge, with codes valid across block boundaries.
  MergeInputs in(3, 400, /*seed_base=*/70);
  MergeExchange::Options options;
  options.batch_rows = 64;
  MergeExchange exchange(in.ops, nullptr, options);
  exchange.Open();
  OvcStreamChecker checker(&in.schema);
  uint64_t rows = 0;
  RowBlock block(in.schema.total_columns(), /*capacity_rows=*/57);
  uint32_t n;
  while ((n = exchange.NextBatch(&block)) > 0) {
    for (uint32_t r = 0; r < n; ++r) {
      ASSERT_TRUE(checker.Observe(block.row(r), block.code(r)))
          << checker.error();
    }
    rows += n;
  }
  exchange.Close();
  EXPECT_EQ(rows, 1200u);
}

TEST(MergeExchange, EarlyCloseWhileProducersBlockedOnFullQueues) {
  // Tight queues (1 batch deep) with large inputs guarantee the producers
  // are parked in BoundedBatchQueue::Push when Close() lands mid-stream;
  // Close must cancel, join, and leave the inputs closed.
  MergeInputs in(3, 20000, /*seed_base=*/80);
  std::vector<std::unique_ptr<LifecycleSpy>> spies;
  std::vector<Operator*> spied;
  for (Operator* op : in.ops) {
    spies.push_back(std::make_unique<LifecycleSpy>(op));
    spied.push_back(spies.back().get());
  }
  MergeExchange::Options options;
  options.batch_rows = 16;
  options.queue_batches = 1;
  MergeExchange exchange(spied, nullptr, options);
  exchange.Open();
  RowRef ref;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(exchange.Next(&ref));
  exchange.Close();  // producers blocked on full queues: must not hang
  for (const auto& spy : spies) {
    EXPECT_EQ(spy->opens, 1);
    EXPECT_EQ(spy->closes, 1);
  }
}

TEST(MergeExchange, DestructorWithoutCloseJoinsProducers) {
  MergeInputs in(3, 20000, /*seed_base=*/85);
  {
    MergeExchange::Options options;
    options.batch_rows = 16;
    options.queue_batches = 1;
    MergeExchange exchange(in.ops, nullptr, options);
    exchange.Open();
    RowRef ref;
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(exchange.Next(&ref));
    // Destructor with live, blocked producers: must cancel and join.
  }
}

TEST(MergeExchange, DestructorWithoutCloseBalancesInlineInputs) {
  // Inline mode opened the inputs on the consumer thread; destruction
  // after Open() without Close() must still balance those opens.
  MergeInputs in(3, 300, /*seed_base=*/87);
  std::vector<std::unique_ptr<LifecycleSpy>> spies;
  std::vector<Operator*> spied;
  for (Operator* op : in.ops) {
    spies.push_back(std::make_unique<LifecycleSpy>(op));
    spied.push_back(spies.back().get());
  }
  {
    MergeExchange::Options options;
    options.threaded = false;
    MergeExchange exchange(spied, nullptr, options);
    exchange.Open();
    RowRef ref;
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(exchange.Next(&ref));
  }
  for (const auto& spy : spies) {
    EXPECT_EQ(spy->opens, 1);
    EXPECT_EQ(spy->closes, 1);
  }
}

TEST(MergeExchange, EarlyCloseJoinsProducers) {
  Schema schema(2);
  std::vector<RowBuffer> tables;
  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<std::unique_ptr<RunScan>> scans;
  std::vector<Operator*> inputs;
  for (int i = 0; i < 3; ++i) {
    tables.push_back(MakeTable(schema, 5000, 4, /*seed=*/i, /*sorted=*/true));
  }
  for (int i = 0; i < 3; ++i) {
    runs.push_back(
        std::make_unique<InMemoryRun>(RunFromSorted(schema, tables[i])));
    scans.push_back(std::make_unique<RunScan>(&schema, runs.back().get()));
    inputs.push_back(scans.back().get());
  }
  MergeExchange exchange(inputs, nullptr);
  exchange.Open();
  RowRef ref;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(exchange.Next(&ref));
  }
  exchange.Close();  // must not hang or crash with blocked producers
}

TEST(SplitThenMerge, RoundTripPreservesStream) {
  // split -> merge recomposes a sorted stream (the paper's decomposition of
  // many-to-many shuffle into one-to-many plus many-to-one).
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 600, 5, /*seed=*/93, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  SplitExchange split(&scan, 4, SplitExchange::Policy::kHashKey, nullptr);
  std::vector<Operator*> parts;
  for (uint32_t i = 0; i < 4; ++i) parts.push_back(split.partition(i));
  MergeExchange::Options options;
  options.threaded = false;  // partitions share the child operator
  MergeExchange merge(parts, nullptr, options);
  RowVec out = DrainValidated(&merge);
  RowVec expected = ToRowVec(table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace ovc
