// Order-preserving shuffle (Section 4.10): splitting exchange with
// per-partition filter-theorem codes, merging exchange (threaded and
// inline).

#include <vector>

#include <gtest/gtest.h>

#include "exec/exchange.h"
#include "exec/scan.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

InMemoryRun RunFromSorted(const Schema& schema, const RowBuffer& sorted) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < sorted.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(sorted.row(i))
                      : codec.MakeFromRow(
                            sorted.row(i),
                            cmp.FirstDifference(sorted.row(i - 1),
                                                sorted.row(i), 0));
    run.Append(sorted.row(i), code);
  }
  return run;
}

struct SplitParam {
  SplitExchange::Policy policy;
  uint32_t partitions;
  const char* name;
};

class SplitExchangeTest : public ::testing::TestWithParam<SplitParam> {};

TEST_P(SplitExchangeTest, PartitionsAreValidStreamsCoveringInput) {
  const auto p = GetParam();
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 1200, 4, /*seed=*/91, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  std::vector<uint64_t> bounds;
  if (p.policy == SplitExchange::Policy::kRangeFirstColumn) {
    for (uint32_t b = 1; b < p.partitions; ++b) bounds.push_back(b);
  }
  QueryCounters counters;
  SplitExchange split(&scan, p.partitions, p.policy, &counters, bounds);

  RowVec all;
  for (uint32_t i = 0; i < p.partitions; ++i) {
    RowVec part = DrainValidated(split.partition(i));
    for (auto& row : part) all.push_back(std::move(row));
  }
  RowVec expected = ToRowVec(table);
  Canonicalize(&all);
  Canonicalize(&expected);
  EXPECT_EQ(all, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SplitExchangeTest,
    ::testing::Values(
        SplitParam{SplitExchange::Policy::kHashKey, 4, "hash4"},
        SplitParam{SplitExchange::Policy::kRoundRobin, 3, "roundrobin3"},
        SplitParam{SplitExchange::Policy::kRangeFirstColumn, 4, "range4"},
        SplitParam{SplitExchange::Policy::kHashKey, 1, "hash1"}),
    [](const ::testing::TestParamInfo<SplitParam>& info) {
      return info.param.name;
    });

TEST(SplitExchange, InterleavedConsumptionStaysValid) {
  // Consume partitions round-robin a row at a time: buffering must keep
  // every partition stream independently valid.
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 300, 3, /*seed=*/92, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  SplitExchange split(&scan, 3, SplitExchange::Policy::kRoundRobin, nullptr);
  std::vector<OvcStreamChecker> checkers(3, OvcStreamChecker(&schema));
  std::vector<bool> done(3, false);
  uint64_t total = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t i = 0; i < 3; ++i) {
      if (done[i]) continue;
      RowRef ref;
      if (split.partition(i)->Next(&ref)) {
        ASSERT_TRUE(checkers[i].Observe(ref.cols, ref.ovc))
            << checkers[i].error();
        ++total;
        progress = true;
      } else {
        done[i] = true;
      }
    }
  }
  EXPECT_EQ(total, 300u);
}

class MergeExchangeTest : public ::testing::TestWithParam<bool> {};

TEST_P(MergeExchangeTest, MergesPartitionsBackToOneValidStream) {
  const bool threaded = GetParam();
  Schema schema(3, 1);
  const uint32_t kInputs = 5;
  std::vector<RowBuffer> tables;
  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<std::unique_ptr<RunScan>> scans;
  std::vector<Operator*> inputs;
  RowVec expected;
  for (uint32_t i = 0; i < kInputs; ++i) {
    tables.push_back(
        MakeTable(schema, 200 + 50 * i, 4, /*seed=*/100 + i, /*sorted=*/true));
  }
  for (uint32_t i = 0; i < kInputs; ++i) {
    for (const auto& row : ToRowVec(tables[i])) expected.push_back(row);
    runs.push_back(
        std::make_unique<InMemoryRun>(RunFromSorted(schema, tables[i])));
    scans.push_back(std::make_unique<RunScan>(&schema, runs.back().get()));
    inputs.push_back(scans.back().get());
  }
  QueryCounters counters;
  MergeExchange::Options options;
  options.threaded = threaded;
  options.batch_rows = 64;
  MergeExchange exchange(inputs, &counters, options);
  RowVec out = DrainValidated(&exchange);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, MergeExchangeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "threaded" : "inline";
                         });

TEST(MergeExchange, EarlyCloseJoinsProducers) {
  Schema schema(2);
  std::vector<RowBuffer> tables;
  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<std::unique_ptr<RunScan>> scans;
  std::vector<Operator*> inputs;
  for (int i = 0; i < 3; ++i) {
    tables.push_back(MakeTable(schema, 5000, 4, /*seed=*/i, /*sorted=*/true));
  }
  for (int i = 0; i < 3; ++i) {
    runs.push_back(
        std::make_unique<InMemoryRun>(RunFromSorted(schema, tables[i])));
    scans.push_back(std::make_unique<RunScan>(&schema, runs.back().get()));
    inputs.push_back(scans.back().get());
  }
  MergeExchange exchange(inputs, nullptr);
  exchange.Open();
  RowRef ref;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(exchange.Next(&ref));
  }
  exchange.Close();  // must not hang or crash with blocked producers
}

TEST(SplitThenMerge, RoundTripPreservesStream) {
  // split -> merge recomposes a sorted stream (the paper's decomposition of
  // many-to-many shuffle into one-to-many plus many-to-one).
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 600, 5, /*seed=*/93, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  SplitExchange split(&scan, 4, SplitExchange::Policy::kHashKey, nullptr);
  std::vector<Operator*> parts;
  for (uint32_t i = 0; i < 4; ++i) parts.push_back(split.partition(i));
  MergeExchange::Options options;
  options.threaded = false;  // partitions share the child operator
  MergeExchange merge(parts, nullptr, options);
  RowVec out = DrainValidated(&merge);
  RowVec expected = ToRowVec(table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace ovc
