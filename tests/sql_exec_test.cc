// End-to-end SQL front-end tests: every supported clause combination runs
// through SqlSession and is cross-checked row-for-row against the
// equivalent hand-built PlanBuilder plan, with OvcStreamChecker validation
// on, at parallelism 1 and 4. Also asserts the acceptance property: an
// ORDER BY over a pre-sorted coded table plans as an elided sort.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "plan/plan_executor.h"
#include "sql/catalog.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace ovc::sql {
namespace {

using ovc::testing::RowVec;
using ovc::testing::ToRowVec;
using plan::PlanBuilder;

plan::PlanExecutor::Options MakeOptions(uint32_t parallelism) {
  plan::PlanExecutor::Options options;
  options.validate = true;
  options.abort_on_violation = false;
  options.planner.parallelism = parallelism;
  return options;
}

class SqlExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Payload columns carry the running row number (see GenerateRows), so
    // e.g. lineitem.qty equals the pre-sort row id.
    Catalog::GeneratedSpec spec;
    spec.distinct_per_column = 100;
    spec.seed = 1;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("lineitem",
                                       {"orderkey", "qty", "price"},
                                       Schema(1, 2), 2000, spec)
                    .ok());
    spec.seed = 2;
    spec.sorted = true;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("orders", {"orderkey", "custkey"},
                                       Schema(1, 1), 500, spec)
                    .ok());
    spec = Catalog::GeneratedSpec();
    spec.distinct_per_column = 8;
    spec.seed = 3;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("hits", {"site", "day", "visitor"},
                                       Schema(3, 0), 3000, spec)
                    .ok());
    spec.seed = 4;
    spec.sorted = true;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("events", {"site", "day", "visitor"},
                                       Schema(3, 0), 2000, spec)
                    .ok());
    spec = Catalog::GeneratedSpec();
    spec.distinct_per_column = 32;
    spec.seed = 5;
    ASSERT_TRUE(
        catalog_.RegisterGenerated("s1", {"a", "b"}, Schema(2, 0), 1500, spec)
            .ok());
    spec.seed = 6;
    ASSERT_TRUE(
        catalog_.RegisterGenerated("s2", {"a", "b"}, Schema(2, 0), 1500, spec)
            .ok());
    spec = Catalog::GeneratedSpec();
    spec.distinct_per_column = 6;
    spec.seed = 7;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("wide", {"a", "b", "c"}, Schema(2, 1),
                                       2000, spec)
                    .ok());
  }

  plan::TableSource Source(const std::string& name) const {
    const CatalogTable* table = catalog_.Find(name);
    EXPECT_NE(table, nullptr) << name;
    return table->source;
  }

  /// Runs `sql_text` through SqlSession and `hand` (the binder-equivalent
  /// hand-built plan) through PlanExecutor at parallelism 1 and 4;
  /// expects validated streams and row-for-row equal results.
  void CheckSql(const std::string& sql_text,
                const std::function<std::unique_ptr<plan::LogicalNode>()>&
                    hand) {
    RowVec rows_at_1;
    for (uint32_t parallelism : {1u, 4u}) {
      SCOPED_TRACE("parallelism " + std::to_string(parallelism));
      const plan::PlanExecutor::Options options = MakeOptions(parallelism);

      SqlSession session(&catalog_, options);
      SqlResult<QueryResult> got = session.Run(sql_text);
      ASSERT_TRUE(got.ok()) << got.error().Render(sql_text);
      EXPECT_TRUE(got.value().result.ok())
          << got.value().result.validation_error;

      QueryCounters counters;
      TempFileManager temp;
      plan::PlanExecutor executor(&counters, &temp, options);
      std::unique_ptr<plan::LogicalNode> logical = hand();
      plan::ExecutionResult want = executor.Run(logical.get());
      EXPECT_TRUE(want.ok()) << want.validation_error;

      const RowVec got_rows = ToRowVec(got.value().result.rows);
      const RowVec want_rows = ToRowVec(want.rows);
      ASSERT_EQ(got_rows.size(), want_rows.size());
      EXPECT_EQ(got_rows, want_rows);

      if (parallelism == 1) {
        rows_at_1 = got_rows;
      } else {
        // Serial and exchange-parallel plans agree on the multiset.
        RowVec serial = rows_at_1, parallel = got_rows;
        ovc::testing::Canonicalize(&serial);
        ovc::testing::Canonicalize(&parallel);
        EXPECT_EQ(serial, parallel);
      }
    }
  }

  Catalog catalog_;
};

TEST_F(SqlExecTest, SelectStar) {
  CheckSql("SELECT * FROM lineitem", [&] {
    return PlanBuilder::Scan(Source("lineitem")).Build();
  });
}

TEST_F(SqlExecTest, ProjectionReorder) {
  CheckSql("SELECT qty, orderkey FROM lineitem", [&] {
    return PlanBuilder::Scan(Source("lineitem"))
        .Project(Schema(1, 1), {1, 0})
        .Build();
  });
}

TEST_F(SqlExecTest, WhereConjunction) {
  CheckSql(
      "SELECT * FROM lineitem WHERE qty < 600 AND orderkey >= 10 "
      "AND qty != price",
      [&] {
        return PlanBuilder::Scan(Source("lineitem"))
            .Filter([](const uint64_t* row) {
              return row[1] < 600 && row[0] >= 10 && row[1] != row[2];
            })
            .Build();
      });
}

TEST_F(SqlExecTest, WhereColumnVsColumn) {
  CheckSql("SELECT a, b FROM s1 WHERE a = b", [&] {
    return PlanBuilder::Scan(Source("s1"))
        .Filter([](const uint64_t* row) { return row[0] == row[1]; })
        .Build();
  });
}

TEST_F(SqlExecTest, JoinSortedProbe) {
  // orders is pre-sorted with codes; the planner sorts lineitem once and
  // merge joins. SELECT * drops the internal match-indicator column.
  CheckSql(
      "SELECT * FROM orders o INNER JOIN lineitem l "
      "ON o.orderkey = l.orderkey",
      [&] {
        PlanBuilder right = PlanBuilder::Scan(Source("lineitem"));
        return PlanBuilder::Scan(Source("orders"))
            .Join(std::move(right), JoinType::kInner)
            .Project(Schema(1, 3), {0, 1, 2, 3})
            .Build();
      });

  SqlSession session(&catalog_, MakeOptions(1));
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = session.Prepare(
      "SELECT * FROM orders o INNER JOIN lineitem l "
      "ON o.orderkey = l.orderkey");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared.value()->physical->Uses(plan::PhysicalAlg::kMergeJoin));
  EXPECT_NE(prepared.value()->explain_text().find("merge-join"),
            std::string::npos);
}

TEST_F(SqlExecTest, JoinOnNonLeadingColumnRearranges) {
  // l.qty is a payload column: the binder projects lineitem so qty is the
  // key before joining against orders' leading key.
  CheckSql(
      "SELECT * FROM lineitem l INNER JOIN orders o ON l.qty = o.orderkey",
      [&] {
        PlanBuilder right = PlanBuilder::Scan(Source("orders"));
        return PlanBuilder::Scan(Source("lineitem"))
            .Project(Schema(1, 2), {1, 0, 2})
            .Join(std::move(right), JoinType::kInner)
            .Project(Schema(1, 3), {0, 1, 2, 3})
            .Build();
      });
}

TEST_F(SqlExecTest, GroupByLeadingKeyAllAggregates) {
  CheckSql(
      "SELECT orderkey, COUNT(*) AS n, SUM(qty) AS s, MIN(qty) AS lo, "
      "MAX(price) AS hi FROM lineitem GROUP BY orderkey",
      [&] {
        return PlanBuilder::Scan(Source("lineitem"))
            .Aggregate(1, {{AggFn::kCount, 0},
                           {AggFn::kSum, 1},
                           {AggFn::kMin, 1},
                           {AggFn::kMax, 2}})
            .Build();
      });
}

TEST_F(SqlExecTest, GroupByNonLeadingColumnRearranges) {
  // b is the second key column: the binder projects (b, c) -- grouping key
  // plus the single aggregate input -- before aggregating.
  CheckSql("SELECT b, SUM(c) AS s FROM wide GROUP BY b", [&] {
    return PlanBuilder::Scan(Source("wide"))
        .Project(Schema(1, 1), {1, 2})
        .Aggregate(1, {{AggFn::kSum, 1}})
        .Build();
  });
}

TEST_F(SqlExecTest, CountDistinct) {
  // The paper's web-analytics shape: distinct over (site, day, visitor),
  // then a streaming count per (site, day) -- no projection needed when
  // the key is already exactly the distinct key.
  CheckSql(
      "SELECT site, day, COUNT(DISTINCT visitor) AS v FROM hits "
      "GROUP BY site, day",
      [&] {
        return PlanBuilder::Scan(Source("hits"))
            .Distinct()
            .Aggregate(2, {{AggFn::kCount, 0}})
            .Build();
      });
}

TEST_F(SqlExecTest, SelectDistinct) {
  CheckSql("SELECT DISTINCT day FROM hits", [&] {
    return PlanBuilder::Scan(Source("hits"))
        .Project(Schema(1, 0), {1})
        .Distinct()
        .Build();
  });
}

TEST_F(SqlExecTest, OrderByPreSortedTableElidesSort) {
  CheckSql("SELECT * FROM events ORDER BY site, day", [&] {
    return PlanBuilder::Scan(Source("events")).Sort().Build();
  });

  // Acceptance: the EXPLAIN shows the sort elided, and no sort ran.
  SqlSession session(&catalog_, MakeOptions(1));
  SqlResult<std::unique_ptr<PreparedQuery>> prepared =
      session.Prepare("SELECT * FROM events ORDER BY site, day");
  ASSERT_TRUE(prepared.ok());
  const plan::PhysicalPlan& physical = *prepared.value()->physical;
  EXPECT_TRUE(physical.Uses(plan::PhysicalAlg::kElidedSort));
  EXPECT_FALSE(physical.Uses(plan::PhysicalAlg::kSort));
  EXPECT_EQ(physical.inserted_sorts(), 0u);
  EXPECT_EQ(physical.elided_sorts(), 1u);
  EXPECT_NE(prepared.value()->explain_text().find("elided-sort"),
            std::string::npos);
}

TEST_F(SqlExecTest, OrderByDescendingAndNonPrefix) {
  // ORDER BY keys that are not the select list's leading columns: the
  // binder sorts on a rearranged key and restores the select order after.
  CheckSql("SELECT orderkey, qty FROM lineitem ORDER BY qty DESC, orderkey",
           [&] {
             return PlanBuilder::Scan(Source("lineitem"))
                 .Project(Schema(1, 1), {0, 1})
                 .Project(Schema({SortDirection::kDescending,
                                  SortDirection::kAscending},
                                 0),
                          {1, 0})
                 .Sort()
                 .Project(Schema(1, 1), {1, 0})
                 .Build();
           });
}

TEST_F(SqlExecTest, OrderByAlias) {
  CheckSql(
      "SELECT site, COUNT(*) AS n FROM hits GROUP BY site ORDER BY n, site",
      [&] {
        return PlanBuilder::Scan(Source("hits"))
            .Aggregate(1, {{AggFn::kCount, 0}})
            .Project(Schema(2, 0), {1, 0})
            .Sort()
            .Project(Schema(1, 1), {1, 0})
            .Build();
      });
}

TEST_F(SqlExecTest, LimitWithoutOrder) {
  CheckSql("SELECT * FROM lineitem LIMIT 7", [&] {
    return PlanBuilder::Scan(Source("lineitem")).Limit(7).Build();
  });
}

TEST_F(SqlExecTest, OrderByLimit) {
  CheckSql("SELECT * FROM events ORDER BY site, day, visitor LIMIT 5", [&] {
    return PlanBuilder::Scan(Source("events")).Sort().Limit(5).Build();
  });
}

TEST_F(SqlExecTest, SetOperations) {
  const char* kinds[] = {"INTERSECT", "EXCEPT", "UNION ALL"};
  const SetOpType types[] = {SetOpType::kIntersect, SetOpType::kExcept,
                             SetOpType::kUnion};
  const bool alls[] = {false, false, true};
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(kinds[i]);
    CheckSql(
        std::string("SELECT a, b FROM s1 ") + kinds[i] +
            " SELECT a, b FROM s2",
        [&] {
          PlanBuilder right = PlanBuilder::Scan(Source("s2"));
          return PlanBuilder::Scan(Source("s1"))
              .SetOp(std::move(right), types[i], alls[i])
              .Build();
        });
  }
}

TEST_F(SqlExecTest, SetOpWithOrderAndLimit) {
  CheckSql(
      "SELECT a, b FROM s1 INTERSECT SELECT a, b FROM s2 "
      "ORDER BY a, b LIMIT 10",
      [&] {
        PlanBuilder right = PlanBuilder::Scan(Source("s2"));
        return PlanBuilder::Scan(Source("s1"))
            .SetOp(std::move(right), SetOpType::kIntersect, false)
            .Sort()
            .Limit(10)
            .Build();
      });
}

TEST_F(SqlExecTest, JoinWhereGroupOrderLimit) {
  // The kitchen sink: join + filter + aggregation + order + limit. In the
  // join output, l.qty sits at column 2 (key, o.custkey, l.qty, l.price).
  CheckSql(
      "SELECT o.orderkey, COUNT(*) AS n FROM orders o "
      "INNER JOIN lineitem l ON o.orderkey = l.orderkey "
      "WHERE l.qty < 1500 GROUP BY o.orderkey "
      "ORDER BY o.orderkey LIMIT 20",
      [&] {
        PlanBuilder right = PlanBuilder::Scan(Source("lineitem"));
        return PlanBuilder::Scan(Source("orders"))
            .Join(std::move(right), JoinType::kInner)
            .Filter([](const uint64_t* row) { return row[2] < 1500; })
            .Aggregate(1, {{AggFn::kCount, 0}})
            .Sort()
            .Limit(20)
            .Build();
      });
}

TEST_F(SqlExecTest, ParallelPlansUseExchanges) {
  SqlSession session(&catalog_, MakeOptions(4));
  // The ORDER BY gives the aggregation an interesting order, so the
  // planner picks the sort-based aggregate and its exchange-parallel
  // shape (hash-split on the grouping prefix, merged back in order).
  SqlResult<std::string> explain = session.Explain(
      "SELECT site, day, COUNT(*) AS n FROM hits GROUP BY site, day "
      "ORDER BY site, day");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("merge-exchange"), std::string::npos)
      << explain.value();
  EXPECT_NE(explain.value().find("split-exchange"), std::string::npos);
}

TEST_F(SqlExecTest, PreparedQueryReruns) {
  SqlSession session(&catalog_, MakeOptions(1));
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = session.Prepare(
      "SELECT orderkey, COUNT(*) AS n FROM lineitem GROUP BY orderkey");
  ASSERT_TRUE(prepared.ok());
  QueryResult first = session.Run(prepared.value().get());
  QueryResult second = session.Run(prepared.value().get());
  EXPECT_GT(first.result.row_count(), 0u);
  EXPECT_EQ(ToRowVec(first.result.rows), ToRowVec(second.result.rows));
  ASSERT_EQ(first.columns.size(), 2u);
  EXPECT_EQ(first.columns[0], "orderkey");
  EXPECT_EQ(first.columns[1], "n");
}

TEST_F(SqlExecTest, ExplainStatementReturnsPlanText) {
  SqlSession session(&catalog_, MakeOptions(1));
  SqlResult<QueryResult> result =
      session.Run("EXPLAIN SELECT * FROM events ORDER BY site");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().is_explain);
  EXPECT_EQ(result.value().result.row_count(), 0u);
  EXPECT_NE(result.value().explain_text.find("elided-sort"),
            std::string::npos);
}

// --- Cost model surfacing --------------------------------------------------

TEST_F(SqlExecTest, ExplainShowsCostAnnotations) {
  // Every physical node's EXPLAIN line carries the cost model's
  // {rows=... cost=...} estimate (docs/COST_MODEL.md shows worked
  // examples; tools/check_docs.sh keeps them in sync with this output).
  SqlSession session(&catalog_, MakeOptions(1));
  SqlResult<std::string> explain = session.Explain(
      "SELECT * FROM orders o INNER JOIN lineitem l "
      "ON o.orderkey = l.orderkey");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("{rows="), std::string::npos)
      << explain.value();
  EXPECT_NE(explain.value().find("cost="), std::string::npos);
  // The scan of lineitem reports the catalog's exact row count.
  EXPECT_NE(explain.value().find("{rows=2000"), std::string::npos)
      << explain.value();
}

TEST_F(SqlExecTest, RuleBasedPolicyReproducesPrePR5PlanShapes) {
  // CostPolicy::kRuleBased pins the pure property/policy planner of
  // PR 1..4: every pre-PR5 scenario keeps its plan shape, and the rows
  // match the default cost-based session's rows (plan choice never
  // changes results).
  plan::PlanExecutor::Options rule_options = MakeOptions(1);
  rule_options.planner.cost_policy = plan::CostPolicy::kRuleBased;

  struct Scenario {
    const char* sql;
    std::vector<plan::PhysicalAlg> uses;
  };
  const Scenario scenarios[] = {
      {"SELECT * FROM events ORDER BY site, day",
       {plan::PhysicalAlg::kElidedSort}},
      {"SELECT * FROM orders o INNER JOIN lineitem l "
       "ON o.orderkey = l.orderkey",
       {plan::PhysicalAlg::kMergeJoin}},
      {"SELECT orderkey, COUNT(*) AS n FROM lineitem GROUP BY orderkey",
       {plan::PhysicalAlg::kHashAggregate}},
      {"SELECT site, day, COUNT(DISTINCT visitor) AS v FROM hits "
       "GROUP BY site, day",
       {plan::PhysicalAlg::kInSortDistinct,
        plan::PhysicalAlg::kInStreamAggregate}},
      {"SELECT a, b FROM s1 INTERSECT SELECT a, b FROM s2",
       {plan::PhysicalAlg::kSetOperation}},
  };

  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.sql);
    SqlSession rule_session(&catalog_, rule_options);
    SqlResult<QueryResult> rule_result = rule_session.Run(scenario.sql);
    ASSERT_TRUE(rule_result.ok())
        << rule_result.error().Render(scenario.sql);

    SqlSession cost_session(&catalog_, MakeOptions(1));
    SqlResult<QueryResult> cost_result = cost_session.Run(scenario.sql);
    ASSERT_TRUE(cost_result.ok());

    RowVec rule_rows = ToRowVec(rule_result.value().result.rows);
    RowVec cost_rows = ToRowVec(cost_result.value().result.rows);
    ovc::testing::Canonicalize(&rule_rows);
    ovc::testing::Canonicalize(&cost_rows);
    EXPECT_EQ(rule_rows, cost_rows);

    SqlResult<std::unique_ptr<PreparedQuery>> prepared =
        rule_session.Prepare(scenario.sql);
    ASSERT_TRUE(prepared.ok());
    for (plan::PhysicalAlg alg : scenario.uses) {
      EXPECT_TRUE(prepared.value()->physical->Uses(alg))
          << prepared.value()->explain_text();
    }
  }
}

// --- Binder errors ---------------------------------------------------------

TEST_F(SqlExecTest, BinderErrors) {
  SqlSession session(&catalog_, MakeOptions(1));

  auto expect_error = [&](const std::string& sql_text,
                          const std::string& message_part, uint32_t line,
                          uint32_t column) {
    SqlResult<QueryResult> result = session.Run(sql_text);
    ASSERT_FALSE(result.ok()) << "unexpectedly bound: " << sql_text;
    EXPECT_NE(result.error().message.find(message_part), std::string::npos)
        << result.error().message;
    EXPECT_EQ(result.error().line, line) << result.error().ToString();
    EXPECT_EQ(result.error().column, column) << result.error().ToString();
  };

  expect_error("SELECT * FROM nope", "unknown table 'nope'", 1, 15);
  expect_error("SELECT zap FROM lineitem", "unknown column 'zap'", 1, 8);
  // After an equi-join the key column is one output column reachable via
  // both input names, so unqualified `a` is NOT ambiguous -- but the two
  // payload columns named b are.
  expect_error(
      "SELECT a FROM s1 INNER JOIN s2 ON s1.a = s2.a WHERE b = 1",
      "ambiguous column 'b'", 1, 53);
  expect_error("SELECT qty FROM lineitem GROUP BY orderkey",
               "must appear in GROUP BY", 1, 8);
  expect_error(
      "SELECT site, COUNT(DISTINCT visitor), COUNT(*) FROM hits "
      "GROUP BY site",
      "COUNT(DISTINCT) cannot be combined", 1, 14);
  expect_error("SELECT COUNT(*) FROM hits", "aggregates require GROUP BY", 1,
               8);
  expect_error("SELECT a, b FROM s1 UNION SELECT orderkey FROM orders",
               "set operation inputs have 2 vs 1 columns", 1, 21);
  expect_error("SELECT a FROM s1 ORDER BY b",
               "ORDER BY column 'b' is not in the select list", 1, 27);
  expect_error("SELECT * FROM hits GROUP BY site",
               "SELECT * cannot be combined", 1, 15);
  expect_error("SELECT s1.a FROM s1 INNER JOIN s2 ON s1.a = s1.b",
               "join condition must compare a column of each input", 1, 38);
}

}  // namespace
}  // namespace ovc::sql
