// Figure 6-style spill-stress suite: the same queries raced down a ladder
// of shrinking memory budgets, sort-based against hash-based plans, at
// parallelism 1 and 4. Every constrained run must produce exactly the
// rows of an unconstrained oracle run -- graceful degradation changes
// *how* a query executes (partition spills, mid-query hash->sort
// fallback), never *what* it returns -- and the spill/fallback counters
// must show the degradation actually happened.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "exec/fallback_policy.h"
#include "plan/plan_executor.h"
#include "sql/catalog.h"
#include "sql/session.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

// Tables sized so the constrained budgets below are badly wrong: the
// aggregate sees 2000 groups, the join builds 2000 rows.
constexpr uint64_t kFactRows = 40000;
constexpr uint64_t kDimRows = 2000;
constexpr uint64_t kDistinctKeys = 2000;

constexpr const char* kAggregateQuery =
    "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k";
constexpr const char* kJoinQuery =
    "SELECT f.k, f.v, d.p FROM fact f JOIN dim d ON f.k = d.k";

class SpillStressTest : public ::testing::Test {
 protected:
  void RegisterTables(sql::Catalog* catalog) {
    sql::Catalog::GeneratedSpec spec;
    spec.distinct_per_column = kDistinctKeys;
    spec.seed = 7;
    ASSERT_TRUE(catalog
                    ->RegisterGenerated("fact", {"k", "v"}, Schema(1, 1),
                                        kFactRows, spec)
                    .ok());
    spec.seed = 8;
    ASSERT_TRUE(catalog
                    ->RegisterGenerated("dim", {"k", "p"}, Schema(1, 1),
                                        kDimRows, spec)
                    .ok());
  }

  /// Runs `query` under `options`, returning the canonicalized rows and
  /// (optionally) the session counters the run accumulated.
  RowVec RunQuery(const sql::SqlSession::Options& options,
                  const std::string& query,
                  QueryCounters* counters_out = nullptr) {
    sql::Catalog catalog;
    RegisterTables(&catalog);
    sql::SqlSession session(&catalog, options);
    sql::SqlResult<sql::QueryResult> got = session.Run(query);
    EXPECT_TRUE(got.ok()) << got.error().Render(query);
    if (!got.ok()) return {};
    if (counters_out != nullptr) *counters_out = *session.counters();
    RowVec rows = ToRowVec(got.value().result.rows);
    Canonicalize(&rows);
    return rows;
  }

  static sql::SqlSession::Options BaseOptions(uint32_t parallelism) {
    sql::SqlSession::Options options;
    options.validate = true;
    options.abort_on_violation = false;
    options.planner.parallelism = parallelism;
    return options;
  }
};

TEST_F(SpillStressTest, AggregateBudgetLadderMatchesOracle) {
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    const RowVec oracle = RunQuery(BaseOptions(parallelism), kAggregateQuery);
    ASSERT_EQ(oracle.size(), kDistinctKeys);

    for (uint64_t budget : {64u, 512u, 4096u}) {
      SCOPED_TRACE("hash budget " + std::to_string(budget));
      // Rule-based planning pins the hash-aggregate plan regardless of the
      // budget -- the cost-based planner would sidestep the stress by
      // flipping to in-sort aggregation at plan time.
      sql::SqlSession::Options options = BaseOptions(parallelism);
      options.planner.cost_policy = plan::CostPolicy::kRuleBased;
      options.planner.hash_memory_rows = budget;
      QueryCounters counters;
      const RowVec rows = RunQuery(options, kAggregateQuery, &counters);
      EXPECT_EQ(rows, oracle);
      // Parallel plans split the groups across `parallelism` aggregate
      // instances; only when even a perfect split overflows every
      // instance's budget is a fallback guaranteed.
      if (budget * parallelism < kDistinctKeys) {
        EXPECT_GT(counters.hash_agg_fallbacks, 0u);
      } else if (budget >= kDistinctKeys) {
        EXPECT_EQ(counters.hash_agg_fallbacks, 0u);
      }
    }
  }
}

TEST_F(SpillStressTest, JoinBudgetLadderMatchesOracle) {
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    const RowVec oracle = RunQuery(BaseOptions(parallelism), kJoinQuery);
    ASSERT_FALSE(oracle.empty());

    for (uint64_t budget : {64u, 512u, 4096u}) {
      SCOPED_TRACE("hash budget " + std::to_string(budget));
      sql::SqlSession::Options options = BaseOptions(parallelism);
      options.planner.cost_policy = plan::CostPolicy::kRuleBased;
      options.planner.hash_memory_rows = budget;
      QueryCounters counters;
      const RowVec rows = RunQuery(options, kJoinQuery, &counters);
      EXPECT_EQ(rows, oracle);
      // Same split-aware bound as the aggregate ladder, over the build
      // side's rows.
      if (budget * parallelism < kDimRows) {
        EXPECT_GT(counters.hash_join_fallbacks, 0u);
      } else if (budget >= kDimRows) {
        EXPECT_EQ(counters.hash_join_fallbacks, 0u);
      }
    }
  }
}

TEST_F(SpillStressTest, PartitionPolicyRacesSortMergeDownTheLadder) {
  // The same ladder with the classic grace-partition policy: both
  // degradation strategies must agree with the oracle; partitioning shows
  // up as spilled bytes instead of fallbacks.
  const RowVec oracle = RunQuery(BaseOptions(1), kJoinQuery);
  for (uint64_t budget : {64u, 512u}) {
    SCOPED_TRACE("hash budget " + std::to_string(budget));
    sql::SqlSession::Options options = BaseOptions(1);
    options.planner.cost_policy = plan::CostPolicy::kRuleBased;
    options.planner.hash_memory_rows = budget;
    options.planner.fallback = FallbackPolicy::kPartition;
    QueryCounters counters;
    const RowVec rows = RunQuery(options, kJoinQuery, &counters);
    EXPECT_EQ(rows, oracle);
    EXPECT_EQ(counters.hash_join_fallbacks, 0u);
    EXPECT_GT(counters.bytes_spilled, 0u);
  }
}

TEST_F(SpillStressTest, SortBudgetLadderSpillsAndMatchesOracle) {
  // The sort-based side of the race: ORDER BY the fact table under
  // shrinking sort workspaces. Small budgets must spill runs (visible in
  // bytes_spilled) without changing a single output row.
  const std::string query = "SELECT k, v FROM fact ORDER BY k";
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    const RowVec oracle = RunQuery(BaseOptions(parallelism), query);
    ASSERT_EQ(oracle.size(), kFactRows);

    for (uint64_t budget : {256u, 1024u, 4096u}) {
      SCOPED_TRACE("sort budget " + std::to_string(budget));
      sql::SqlSession::Options options = BaseOptions(parallelism);
      options.planner.sort_config.memory_rows = budget;
      QueryCounters counters;
      const RowVec rows = RunQuery(options, query, &counters);
      EXPECT_EQ(rows, oracle);
      EXPECT_GT(counters.bytes_spilled, 0u);
    }
  }
}

TEST_F(SpillStressTest, FallbackSortInheritsSortBudgetAndStillAgrees) {
  // Both budgets constrained at once: the hash operators overflow and
  // fall back, and the fallback sorts themselves run under a tiny sort
  // workspace, so the continuation spills runs too.
  sql::SqlSession::Options options = BaseOptions(1);
  options.planner.cost_policy = plan::CostPolicy::kRuleBased;
  options.planner.hash_memory_rows = 64;
  options.planner.sort_config.memory_rows = 256;
  QueryCounters counters;
  const RowVec rows = RunQuery(options, kAggregateQuery, &counters);
  const RowVec oracle = RunQuery(BaseOptions(1), kAggregateQuery);
  EXPECT_EQ(rows, oracle);
  EXPECT_GT(counters.hash_agg_fallbacks, 0u);
  EXPECT_GT(counters.bytes_spilled, 0u);
}

}  // namespace
}  // namespace ovc
