// End-to-end planner tests: PlanExecutor output cross-checked against
// reference oracles, and plan equivalence across physical alternatives --
// the same logical plan over pre-sorted and unsorted inputs must produce
// identical canonicalized results, with sorts only where order is missing.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "plan/plan_executor.h"
#include "storage/btree.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using plan::BufferSource;
using plan::BTreeSource;
using plan::ExecutionResult;
using plan::LogicalNode;
using plan::PhysicalAlg;
using plan::PlanBuilder;
using plan::PlanExecutor;
using plan::PlannerOptions;

testing::RowVec ToCanonicalRowVec(const RowBuffer& rows) {
  testing::RowVec vec = testing::ToRowVec(rows);
  testing::Canonicalize(&vec);
  return vec;
}

class PlanExecutorTest : public ::testing::Test {
 protected:
  PlanExecutor MakeExecutor(bool prefer_sort_based = false) {
    PlanExecutor::Options options;
    options.planner.prefer_sort_based = prefer_sort_based;
    options.validate = true;  // validate in release builds too
    return PlanExecutor(&counters_, &temp_, options);
  }

  QueryCounters counters_;
  TempFileManager temp_;
};

TEST_F(PlanExecutorTest, SortPlanMatchesReferenceSort) {
  Schema schema(3, 1);
  RowBuffer table = testing::MakeTable(schema, 2000, 5, /*seed=*/7);
  auto logical =
      PlanBuilder::Scan(BufferSource("t", &schema, &table)).Sort().Build();

  PlanExecutor executor = MakeExecutor();
  ExecutionResult result = executor.Run(logical.get());

  EXPECT_TRUE(result.validated);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows),
            testing::ReferenceSort(schema, table));
}

TEST_F(PlanExecutorTest, TopKPlanReturnsSmallestRows) {
  Schema schema(2, 1);
  RowBuffer table = testing::MakeTable(schema, 1000, 8, /*seed=*/11);
  auto logical =
      PlanBuilder::Scan(BufferSource("t", &schema, &table)).TopK(25).Build();

  PlanExecutor executor = MakeExecutor();
  ExecutionResult result = executor.Run(logical.get());

  testing::RowVec expected = testing::ReferenceSort(schema, table);
  expected.resize(25);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows), expected);
}

TEST_F(PlanExecutorTest, DistinctPlansAgreeAcrossPhysicalAlternatives) {
  Schema schema(2, 0);
  RowBuffer table = testing::MakeTable(schema, 3000, 6, /*seed=*/13);
  auto logical =
      PlanBuilder::Scan(BufferSource("t", &schema, &table)).Distinct().Build();

  // Oracle: unique rows of the reference sort.
  testing::RowVec expected = testing::ReferenceSort(schema, table);
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  PlanExecutor hash_exec = MakeExecutor(/*prefer_sort_based=*/false);
  ExecutionResult hash_result = hash_exec.Run(logical.get());
  EXPECT_TRUE(hash_exec.last_plan()->Uses(PhysicalAlg::kHashDistinct));
  EXPECT_EQ(ToCanonicalRowVec(hash_result.rows), expected);

  PlanExecutor sort_exec = MakeExecutor(/*prefer_sort_based=*/true);
  ExecutionResult sort_result = sort_exec.Run(logical.get());
  EXPECT_TRUE(sort_exec.last_plan()->Uses(PhysicalAlg::kInSortDistinct));
  EXPECT_TRUE(sort_result.validated);
  EXPECT_TRUE(sort_result.ok()) << sort_result.validation_error;
  // The sort-based plan's output is already sorted: no canonicalization
  // needed on its side.
  EXPECT_EQ(testing::ToRowVec(sort_result.rows), expected);
}

TEST_F(PlanExecutorTest, SetOpPlanMatchesReferenceIntersection) {
  Schema schema(2, 0);
  RowBuffer left = testing::MakeTable(schema, 800, 5, /*seed=*/17);
  RowBuffer right = testing::MakeTable(schema, 800, 5, /*seed=*/19);

  auto logical =
      PlanBuilder::Scan(BufferSource("l", &schema, &left))
          .SetOp(PlanBuilder::Scan(BufferSource("r", &schema, &right)),
                 SetOpType::kIntersect, /*all=*/false)
          .Build();

  testing::RowVec lv = testing::ReferenceSort(schema, left);
  testing::RowVec rv = testing::ReferenceSort(schema, right);
  lv.erase(std::unique(lv.begin(), lv.end()), lv.end());
  rv.erase(std::unique(rv.begin(), rv.end()), rv.end());
  testing::RowVec expected;
  std::set_intersection(lv.begin(), lv.end(), rv.begin(), rv.end(),
                        std::back_inserter(expected));

  PlanExecutor executor = MakeExecutor();
  ExecutionResult result = executor.Run(logical.get());
  EXPECT_EQ(executor.last_plan()->inserted_sorts(), 2u);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows), expected);
}

TEST_F(PlanExecutorTest, BatchedDrainValidatesAcrossBlockBoundaries) {
  // The executor drains the root through NextBatch. With 7-row blocks a
  // 2000-row sorted result crosses ~285 block boundaries; OvcStreamChecker
  // observes every row, so a single code computed against the wrong base at
  // any boundary would fail validation.
  Schema schema(3, 1);
  RowBuffer table = testing::MakeTable(schema, 2000, 5, /*seed=*/7);
  auto logical =
      PlanBuilder::Scan(BufferSource("t", &schema, &table)).Sort().Build();

  PlanExecutor::Options options;
  options.validate = true;
  options.batch_rows = 7;
  PlanExecutor executor(&counters_, &temp_, options);
  ExecutionResult result = executor.Run(logical.get());

  EXPECT_TRUE(result.validated);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows),
            testing::ReferenceSort(schema, table));
}

// The acceptance scenario: scan -> join -> aggregate -> distinct.
//
// Over pre-sorted inputs (B-trees delivering codes for free) the physical
// plan must contain *zero* sorts of any kind -- every operator consumes and
// reproduces order and codes -- and the output stream must pass
// OvcStreamChecker. The same logical plan over unsorted buffers must
// automatically fall back (hash join + in-sort aggregation here, or
// planner-inserted sorts with prefer_sort_based) and produce identical
// canonicalized results.
class JoinAggregateDistinctTest : public PlanExecutorTest {
 protected:
  JoinAggregateDistinctTest()
      : schema_(2, 1),
        left_(testing::MakeTable(schema_, 1500, 5, /*seed=*/23)),
        right_(testing::MakeTable(schema_, 1200, 5, /*seed=*/29)),
        left_tree_(&schema_, &counters_),
        right_tree_(&schema_, &counters_) {
    for (size_t i = 0; i < left_.size(); ++i) left_tree_.Insert(left_.row(i));
    for (size_t i = 0; i < right_.size(); ++i) {
      right_tree_.Insert(right_.row(i));
    }
  }

  /// scan(l) join scan(r) -> group by key0 -> count + sum(left payload)
  /// -> distinct.
  std::unique_ptr<LogicalNode> MakeLogical(bool sorted_sources) {
    PlanBuilder left = sorted_sources
                           ? PlanBuilder::Scan(BTreeSource("l", &left_tree_))
                           : PlanBuilder::Scan(
                                 BufferSource("l", &schema_, &left_));
    PlanBuilder right =
        sorted_sources
            ? PlanBuilder::Scan(BTreeSource("r", &right_tree_))
            : PlanBuilder::Scan(BufferSource("r", &schema_, &right_));
    return left.Join(std::move(right), JoinType::kInner)
        .Aggregate(1, {{AggFn::kCount, 0}, {AggFn::kSum, 2}})
        .Distinct()
        .Build();
  }

  /// Test-side oracle: nested-loop join on both key columns, then group by
  /// key0 with count and sum of the left payload (canonical join layout
  /// column 2).
  testing::RowVec Oracle() {
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> groups;
    for (size_t i = 0; i < left_.size(); ++i) {
      const uint64_t* l = left_.row(i);
      for (size_t j = 0; j < right_.size(); ++j) {
        const uint64_t* r = right_.row(j);
        if (l[0] == r[0] && l[1] == r[1]) {
          auto& g = groups[l[0]];
          g.first += 1;       // count
          g.second += l[2];   // sum of left payload
        }
      }
    }
    testing::RowVec expected;
    for (const auto& [key, agg] : groups) {
      expected.push_back({key, agg.first, agg.second});
    }
    return expected;
  }

  Schema schema_;
  RowBuffer left_;
  RowBuffer right_;
  BTree left_tree_;
  BTree right_tree_;
};

TEST_F(JoinAggregateDistinctTest, PresortedInputsExecuteWithZeroSorts) {
  auto logical = MakeLogical(/*sorted_sources=*/true);
  PlanExecutor executor = MakeExecutor();
  ExecutionResult result = executor.Run(logical.get());

  const auto* plan = executor.last_plan();
  EXPECT_EQ(plan->inserted_sorts(), 0u) << plan->ToString();
  EXPECT_FALSE(plan->Uses(PhysicalAlg::kSort)) << plan->ToString();
  EXPECT_FALSE(plan->Uses(PhysicalAlg::kInSortAggregate)) << plan->ToString();
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kMergeJoin));
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kInStreamAggregate));
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kDedup));

  // Order and codes flow through the entire plan and check out.
  EXPECT_TRUE(result.validated);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_TRUE(result.order.SortedWithCodes(1));
  EXPECT_EQ(testing::ToRowVec(result.rows), Oracle());
}

TEST_F(JoinAggregateDistinctTest, UnsortedInputsFallBackAndAgree) {
  auto logical = MakeLogical(/*sorted_sources=*/false);
  PlanExecutor executor = MakeExecutor();
  ExecutionResult result = executor.Run(logical.get());

  const auto* plan = executor.last_plan();
  // The planner copes with the missing order without a single standalone
  // sort: hash join where order does not matter, in-sort aggregation where
  // it does (the distinct above has an interesting order).
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kGraceHashJoin)) << plan->ToString();
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kInSortAggregate)) << plan->ToString();
  EXPECT_EQ(plan->inserted_sorts(), 0u) << plan->ToString();

  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(ToCanonicalRowVec(result.rows), Oracle());
}

TEST_F(JoinAggregateDistinctTest, SortBasedFallbackInsertsSortsAndAgrees) {
  auto logical = MakeLogical(/*sorted_sources=*/false);
  PlanExecutor executor = MakeExecutor(/*prefer_sort_based=*/true);
  ExecutionResult result = executor.Run(logical.get());

  const auto* plan = executor.last_plan();
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kMergeJoin)) << plan->ToString();
  EXPECT_EQ(plan->inserted_sorts(), 2u) << plan->ToString();

  EXPECT_TRUE(result.validated);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows), Oracle());
}

TEST_F(JoinAggregateDistinctTest, MixedInputsUseOrderPreservingHashJoin) {
  PlanBuilder left = PlanBuilder::Scan(BTreeSource("l", &left_tree_));
  PlanBuilder right = PlanBuilder::Scan(BufferSource("r", &schema_, &right_));
  auto logical = left.Join(std::move(right), JoinType::kInner)
                     .Aggregate(1, {{AggFn::kCount, 0}, {AggFn::kSum, 2}})
                     .Distinct()
                     .Build();

  // Opt in to the in-memory hash join (the build side fits comfortably).
  PlanExecutor::Options options;
  options.planner.assume_build_fits_memory = true;
  options.validate = true;
  PlanExecutor executor(&counters_, &temp_, options);
  ExecutionResult result = executor.Run(logical.get());

  const auto* plan = executor.last_plan();
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kOrderPreservingHashJoin))
      << plan->ToString();
  EXPECT_EQ(plan->inserted_sorts(), 0u);
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows), Oracle());
}

TEST_F(JoinAggregateDistinctTest, MixedInputsSortOnlyTheBuildSideByDefault) {
  PlanBuilder left = PlanBuilder::Scan(BTreeSource("l", &left_tree_));
  PlanBuilder right = PlanBuilder::Scan(BufferSource("r", &schema_, &right_));
  auto logical = left.Join(std::move(right), JoinType::kInner)
                     .Aggregate(1, {{AggFn::kCount, 0}, {AggFn::kSum, 2}})
                     .Distinct()
                     .Build();

  PlanExecutor executor = MakeExecutor();
  ExecutionResult result = executor.Run(logical.get());

  const auto* plan = executor.last_plan();
  EXPECT_TRUE(plan->Uses(PhysicalAlg::kMergeJoin)) << plan->ToString();
  EXPECT_EQ(plan->inserted_sorts(), 1u) << plan->ToString();
  EXPECT_TRUE(result.ok()) << result.validation_error;
  EXPECT_EQ(testing::ToRowVec(result.rows), Oracle());
}

}  // namespace
}  // namespace ovc
