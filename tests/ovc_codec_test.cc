// Core offset-value coding: golden tests for the paper's Tables 1 and 2,
// and randomized property tests for the proposition, the new theorem, both
// of Iyer's corollaries, and the filter theorem.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/accumulator.h"
#include "core/ovc.h"
#include "core/ovc_compare.h"
#include "core/ovc_reference.h"
#include "common/rng.h"
#include "row/comparator.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::AppendRows;
using ::ovc::testing::MakeTable;

// The seven rows of Table 1 (arity 4, domain 1..99).
RowBuffer Table1Rows() {
  RowBuffer rows(4);
  AppendRows(&rows, {
                        {5, 7, 3, 9},
                        {5, 7, 3, 12},
                        {5, 8, 4, 6},
                        {5, 9, 2, 7},
                        {5, 9, 2, 7},
                        {5, 9, 3, 4},
                        {5, 9, 3, 7},
                    });
  return rows;
}

TEST(Table1Golden, AscendingToyCodes) {
  RowBuffer rows = Table1Rows();
  const uint64_t kDomain = 100;
  // First row is coded at offset 0 ("4 5 405" in the table = relative to a
  // predecessor sharing nothing).
  std::vector<uint64_t> expected = {405, 112, 308, 309, 0, 203, 107};
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(reference::ToyAscendingOvc(4, kDomain, rows.row(i - 1),
                                         rows.row(i)),
              expected[i])
        << "row " << i;
  }
  // Row 0 against an all-different base.
  const uint64_t base0[4] = {0, 0, 0, 0};
  EXPECT_EQ(reference::ToyAscendingOvc(4, kDomain, base0, rows.row(0)),
            expected[0]);
}

TEST(Table1Golden, DescendingToyCodes) {
  RowBuffer rows = Table1Rows();
  const uint64_t kDomain = 100;
  std::vector<uint64_t> expected = {95, 388, 192, 191, 400, 297, 393};
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(reference::ToyDescendingOvc(4, kDomain, rows.row(i - 1),
                                          rows.row(i)),
              expected[i])
        << "row " << i;
  }
  const uint64_t base0[4] = {0, 0, 0, 0};
  EXPECT_EQ(reference::ToyDescendingOvc(4, kDomain, base0, rows.row(0)),
            expected[0]);
}

TEST(Table1Golden, CodecOffsetsAndValues) {
  Schema schema(4);
  OvcCodec codec(&schema);
  RowBuffer rows = Table1Rows();
  // Offsets per Table 1: -, 3, 1, 1, 4(dup), 2, 3.
  std::vector<uint32_t> offsets = {0, 3, 1, 1, 4, 2, 3};
  std::vector<uint64_t> values = {5, 12, 8, 9, 0, 3, 7};
  for (size_t i = 1; i < rows.size(); ++i) {
    const Ovc code =
        reference::AscendingOvc(codec, rows.row(i - 1), rows.row(i));
    EXPECT_EQ(codec.OffsetOf(code), offsets[i]) << "row " << i;
    if (offsets[i] < 4) {
      EXPECT_EQ(OvcCodec::ValueOf(code), values[i]) << "row " << i;
    } else {
      EXPECT_TRUE(codec.IsDuplicate(code));
    }
  }
}

TEST(Table1Golden, NoTwoSuccessiveEqualCodes) {
  // The proposition illustrated by Table 1: no successive equal codes.
  Schema schema(4);
  OvcCodec codec(&schema);
  RowBuffer rows = Table1Rows();
  Ovc prev_code = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    const Ovc code =
        reference::AscendingOvc(codec, rows.row(i - 1), rows.row(i));
    if (i > 1) {
      EXPECT_NE(code, prev_code) << "row " << i;
    }
    prev_code = code;
  }
}

// Table 2: decisions and adjustments against base (3,4,2,5).
TEST(Table2Golden, Case1OffsetsDecide) {
  Schema schema(4);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  const uint64_t base[4] = {3, 4, 2, 5};
  const uint64_t a[4] = {3, 5, 8, 2};  // code 305
  const uint64_t b[4] = {3, 4, 6, 1};  // code 206
  Ovc ca = reference::AscendingOvc(codec, base, a);
  Ovc cb = reference::AscendingOvc(codec, base, b);
  EXPECT_EQ(codec.OffsetOf(ca), 1u);
  EXPECT_EQ(codec.OffsetOf(cb), 2u);
  const int r = CompareWithOvc(codec, cmp, a, &ca, b, &cb);
  EXPECT_GT(r, 0);  // b sorts earlier
  // Loser (a) keeps its code relative to the new winner (unequal-code
  // theorem), and no column comparison was spent.
  EXPECT_EQ(ca, reference::AscendingOvc(codec, b, a));
  EXPECT_EQ(counters.column_comparisons, 0u);
}

TEST(Table2Golden, Case2ValuesDecide) {
  Schema schema(4);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  const uint64_t base[4] = {3, 4, 2, 5};
  const uint64_t a[4] = {3, 4, 3, 8};  // code 203
  const uint64_t b[4] = {3, 4, 9, 1};  // code 209
  Ovc ca = reference::AscendingOvc(codec, base, a);
  Ovc cb = reference::AscendingOvc(codec, base, b);
  const int r = CompareWithOvc(codec, cmp, a, &ca, b, &cb);
  EXPECT_LT(r, 0);  // a sorts earlier
  EXPECT_EQ(cb, reference::AscendingOvc(codec, a, b));
  EXPECT_EQ(counters.column_comparisons, 0u);
}

TEST(Table2Golden, Case3ColumnsDecideAndLoserAdjusts) {
  Schema schema(4);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  const uint64_t base[4] = {3, 4, 2, 5};
  const uint64_t a[4] = {3, 7, 4, 7};  // code 307
  const uint64_t b[4] = {3, 7, 4, 9};  // code 307 (equal!)
  Ovc ca = reference::AscendingOvc(codec, base, a);
  Ovc cb = reference::AscendingOvc(codec, base, b);
  EXPECT_EQ(ca, cb);
  const int r = CompareWithOvc(codec, cmp, a, &ca, b, &cb);
  EXPECT_LT(r, 0);
  // Loser's new code: offset 3, value 9 (the "109" of Table 2).
  EXPECT_EQ(codec.OffsetOf(cb), 3u);
  EXPECT_EQ(OvcCodec::ValueOf(cb), 9u);
  // Comparisons resumed past the shared prefix and value: columns 2 and 3.
  EXPECT_EQ(counters.column_comparisons, 2u);
}

// ---------------------------------------------------------------------------
// Randomized property tests.

struct TheoremParam {
  uint32_t arity;
  uint64_t distinct;
};

class TheoremTest : public ::testing::TestWithParam<TheoremParam> {};

TEST_P(TheoremTest, MaxRuleOnSortedTriples) {
  const auto param = GetParam();
  Schema schema(param.arity);
  OvcCodec codec(&schema);
  RowBuffer rows =
      MakeTable(schema, 512, param.distinct, /*seed=*/7 + param.arity,
                /*sorted=*/true);
  KeyComparator cmp(&schema, nullptr);
  // All consecutive-ish triples A <= B <= C with A<B or B<C.
  for (size_t i = 0; i + 2 < rows.size(); ++i) {
    const uint64_t* a = rows.row(i);
    const uint64_t* b = rows.row(i + 1);
    const uint64_t* c = rows.row(i + 2);
    if (cmp.Compare(a, b) == 0 && cmp.Compare(b, c) == 0) continue;
    const Ovc ab = reference::AscendingOvc(codec, a, b);
    const Ovc bc = reference::AscendingOvc(codec, b, c);
    const Ovc ac = reference::AscendingOvc(codec, a, c);
    EXPECT_EQ(ac, std::max(ab, bc)) << "triple at " << i;
  }
}

TEST_P(TheoremTest, MinRuleDescendingCoding) {
  const auto param = GetParam();
  Schema schema(param.arity);
  DescendingOvcCodec codec(&schema);
  RowBuffer rows =
      MakeTable(schema, 512, param.distinct, /*seed=*/99 + param.arity,
                /*sorted=*/true);
  for (size_t i = 0; i + 2 < rows.size(); ++i) {
    const Ovc ab = reference::DescendingOvc(codec, rows.row(i), rows.row(i + 1));
    const Ovc bc =
        reference::DescendingOvc(codec, rows.row(i + 1), rows.row(i + 2));
    const Ovc ac = reference::DescendingOvc(codec, rows.row(i), rows.row(i + 2));
    EXPECT_EQ(ac, std::min(ab, bc)) << "triple at " << i;
  }
}

TEST_P(TheoremTest, UnequalCodeCorollary) {
  const auto param = GetParam();
  Schema schema(param.arity);
  OvcCodec codec(&schema);
  RowBuffer rows =
      MakeTable(schema, 512, param.distinct, /*seed=*/13 + param.arity,
                /*sorted=*/true);
  for (size_t i = 0; i + 2 < rows.size(); ++i) {
    const uint64_t* a = rows.row(i);
    const uint64_t* b = rows.row(i + 1);
    const uint64_t* c = rows.row(i + 2);
    const Ovc ab = reference::AscendingOvc(codec, a, b);
    const Ovc ac = reference::AscendingOvc(codec, a, c);
    if (ab < ac) {
      EXPECT_EQ(reference::AscendingOvc(codec, b, c), ac) << "triple at " << i;
    }
  }
}

TEST_P(TheoremTest, EqualCodeCorollary) {
  const auto param = GetParam();
  Schema schema(param.arity);
  OvcCodec codec(&schema);
  RowBuffer rows =
      MakeTable(schema, 512, param.distinct, /*seed=*/21 + param.arity,
                /*sorted=*/true);
  KeyComparator cmp(&schema, nullptr);
  for (size_t i = 0; i + 2 < rows.size(); ++i) {
    const uint64_t* a = rows.row(i);
    const uint64_t* b = rows.row(i + 1);
    const uint64_t* c = rows.row(i + 2);
    if (cmp.Compare(a, b) == 0 || cmp.Compare(b, c) == 0) continue;
    const Ovc ab = reference::AscendingOvc(codec, a, b);
    const Ovc ac = reference::AscendingOvc(codec, a, c);
    if (ab == ac) {
      EXPECT_LT(reference::AscendingOvc(codec, b, c), ac) << "triple at " << i;
    }
  }
}

TEST_P(TheoremTest, FilterTheoremOverSortedLists) {
  const auto param = GetParam();
  Schema schema(param.arity);
  OvcCodec codec(&schema);
  RowBuffer rows =
      MakeTable(schema, 256, param.distinct, /*seed=*/31 + param.arity,
                /*sorted=*/true);
  // For random sublist ranges [i, j]: ovc(Xi, Xj) == max of adjacent codes.
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t i = rng.Uniform(rows.size() - 1);
    const size_t j = i + 1 + rng.Uniform(rows.size() - i - 1);
    Ovc running = OvcCodec::EarlyFence();
    for (size_t k = i + 1; k <= j; ++k) {
      running = std::max(running,
                         reference::AscendingOvc(codec, rows.row(k - 1),
                                                 rows.row(k)));
    }
    EXPECT_EQ(running, reference::AscendingOvc(codec, rows.row(i), rows.row(j)))
        << "range [" << i << "," << j << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AritiesAndDomains, TheoremTest,
    ::testing::Values(TheoremParam{1, 4}, TheoremParam{2, 4},
                      TheoremParam{4, 2}, TheoremParam{4, 8},
                      TheoremParam{8, 2}, TheoremParam{12, 3}),
    [](const ::testing::TestParamInfo<TheoremParam>& info) {
      return "arity" + std::to_string(info.param.arity) + "_domain" +
             std::to_string(info.param.distinct);
    });

// ---------------------------------------------------------------------------
// Code word mechanics.

TEST(OvcCodec, FencesBracketValidCodes) {
  Schema schema(4);
  OvcCodec codec(&schema);
  const uint64_t row[4] = {1, 2, 3, 4};
  for (uint32_t off = 0; off <= 4; ++off) {
    const Ovc code = codec.MakeFromRow(row, off);
    EXPECT_GT(code, OvcCodec::EarlyFence());
    EXPECT_LT(code, OvcCodec::LateFence());
    EXPECT_TRUE(OvcCodec::IsValid(code));
    EXPECT_EQ(codec.OffsetOf(code), off);
  }
  EXPECT_FALSE(OvcCodec::IsValid(OvcCodec::EarlyFence()));
  EXPECT_FALSE(OvcCodec::IsValid(OvcCodec::LateFence()));
}

TEST(OvcCodec, HigherOffsetSortsEarlier) {
  // Among codes relative to the same base, a longer shared prefix means
  // closer to the base, i.e. earlier -- numerically smaller in ascending
  // coding.
  Schema schema(4);
  OvcCodec codec(&schema);
  EXPECT_LT(codec.Make(3, 99), codec.Make(2, 0));
  EXPECT_LT(codec.Make(1, 99), codec.Make(0, 0));
  EXPECT_LT(codec.DuplicateCode(), codec.Make(3, 0));
}

TEST(OvcCodec, SaturatedValuesStayMonotoneAndSound) {
  Schema schema(2);
  OvcCodec codec(&schema);
  const uint64_t big = OvcCodec::kValueMask;  // saturation point
  // Monotone: below-saturation < saturated.
  EXPECT_LT(codec.Make(0, big - 1), codec.Make(0, big));
  EXPECT_EQ(codec.Make(0, big), codec.Make(0, big + 12345));
  // Equal saturated codes force column comparison AT the offset.
  EXPECT_EQ(codec.ResumeColumn(codec.Make(0, big + 5)), 0u);
  EXPECT_EQ(codec.ResumeColumn(codec.Make(0, 7)), 1u);
}

TEST(OvcCodec, CompareWithOvcHandlesSaturatedTies) {
  Schema schema(2);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  const uint64_t base[2] = {0, 0};
  const uint64_t a[2] = {OvcCodec::kValueMask + 10, 1};
  const uint64_t b[2] = {OvcCodec::kValueMask + 20, 1};
  Ovc ca = reference::AscendingOvc(codec, base, a);
  Ovc cb = reference::AscendingOvc(codec, base, b);
  EXPECT_EQ(ca, cb);  // both saturate
  const int r = CompareWithOvc(codec, cmp, a, &ca, b, &cb);
  EXPECT_LT(r, 0);
  EXPECT_GE(counters.column_comparisons, 1u);  // resumed at the offset
  EXPECT_EQ(codec.OffsetOf(cb), 0u);
}

TEST(OvcCodec, EqualRowsReportEquality) {
  Schema schema(3);
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  const uint64_t base[3] = {1, 1, 1};
  const uint64_t a[3] = {1, 2, 3};
  const uint64_t b[3] = {1, 2, 3};
  Ovc ca = reference::AscendingOvc(codec, base, a);
  Ovc cb = reference::AscendingOvc(codec, base, b);
  EXPECT_EQ(CompareWithOvc(codec, cmp, a, &ca, b, &cb), 0);
}

TEST(OvcCodec, ClampToPrefixForProjectionAndGrouping) {
  Schema in(4);
  Schema out(2);
  OvcCodec in_codec(&in);
  OvcCodec out_codec(&out);
  // Offset within the surviving prefix: preserved.
  EXPECT_EQ(out_codec.OffsetOf(
                in_codec.ClampToPrefix(in_codec.Make(1, 42), 2, out_codec)),
            1u);
  // Offset at/past the prefix: the shorter key is a duplicate.
  EXPECT_TRUE(out_codec.IsDuplicate(
      in_codec.ClampToPrefix(in_codec.Make(2, 42), 2, out_codec)));
  EXPECT_TRUE(out_codec.IsDuplicate(
      in_codec.ClampToPrefix(in_codec.DuplicateCode(), 2, out_codec)));
}

TEST(OvcAccumulator, NeutralElementAndCombine) {
  Schema schema(3);
  OvcCodec codec(&schema);
  OvcAccumulator acc;
  acc.Reset();
  // Empty accumulation: Combine returns the row's own code.
  EXPECT_EQ(acc.Combine(codec.Make(1, 5)), codec.Make(1, 5));
  acc.Absorb(codec.Make(0, 9));
  EXPECT_EQ(acc.Combine(codec.Make(2, 1)), codec.Make(0, 9));
  acc.Reset();
  EXPECT_EQ(acc.value(), OvcCodec::EarlyFence());
}

TEST(OvcChecker, AcceptsValidStreamRejectsBadCodes) {
  Schema schema(2);
  OvcCodec codec(&schema);
  RowBuffer rows(2);
  ::ovc::testing::AppendRows(&rows, {{1, 1}, {1, 2}, {2, 0}});
  {
    OvcStreamChecker checker(&schema);
    EXPECT_TRUE(checker.Observe(rows.row(0), codec.MakeInitial(rows.row(0))));
    EXPECT_TRUE(checker.Observe(rows.row(1), codec.Make(1, 2)));
    EXPECT_TRUE(checker.Observe(rows.row(2), codec.Make(0, 2)));
    EXPECT_TRUE(checker.ok());
  }
  {
    OvcStreamChecker checker(&schema);
    EXPECT_TRUE(checker.Observe(rows.row(0), codec.MakeInitial(rows.row(0))));
    EXPECT_FALSE(checker.Observe(rows.row(1), codec.Make(0, 1)));  // wrong
    EXPECT_FALSE(checker.ok());
  }
  {
    // Unsorted stream detected.
    OvcStreamChecker checker(&schema);
    EXPECT_TRUE(checker.Observe(rows.row(2), codec.MakeInitial(rows.row(2))));
    EXPECT_FALSE(checker.Observe(rows.row(0), codec.Make(0, 1)));
  }
}

TEST(DescendingCodec, DuplicateIsLargestValidCode) {
  Schema schema(4);
  DescendingOvcCodec codec(&schema);
  const uint64_t row[4] = {9, 9, 9, 9};
  for (uint32_t off = 0; off < 4; ++off) {
    EXPECT_LT(codec.MakeFromRow(row, off), codec.DuplicateCode());
  }
  EXPECT_LT(codec.DuplicateCode(), OvcCodec::LateFence());
  EXPECT_GT(codec.DuplicateCode(), OvcCodec::EarlyFence());
}

TEST(DescendingAccumulator, MinCombine) {
  Schema schema(3);
  DescendingOvcCodec codec(&schema);
  DescendingOvcAccumulator acc;
  acc.Reset();
  const Ovc a = codec.Make(0, 5);
  const Ovc b = codec.Make(2, 1);
  EXPECT_EQ(acc.Combine(b), b);
  acc.Absorb(a);
  EXPECT_EQ(acc.Combine(b), std::min(a, b));
}

}  // namespace
}  // namespace ovc
