// Cost-model tests: cardinality propagation, estimate surfacing, the
// cost-based planner decisions, and -- the acceptance property -- that the
// estimator ranks plan alternatives consistently with *measured* execution,
// where "measured" prices the counters the run actually accumulated
// (column/code comparisons, hash computations, spilled bytes) with the
// same calibrated constants the estimator used.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "plan/cost_model.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "plan/plan_executor.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using plan::AnnotateCardinalities;
using plan::BufferSource;
using plan::CardEstimate;
using plan::CostConstants;
using plan::CostModel;
using plan::CostPolicy;
using plan::LogicalNode;
using plan::NodeEstimate;
using plan::PhysicalAlg;
using plan::PhysicalPlan;
using plan::PlanBuilder;
using plan::Planner;
using plan::PlannerOptions;
using plan::RunSource;
using plan::TableSource;

/// Prices a run's accumulated counters with the calibrated constants --
/// the "measured cost" the estimator's ranking is checked against.
double MeasuredCost(const QueryCounters& counters, const CostConstants& c) {
  return static_cast<double>(counters.column_comparisons) * c.column_compare +
         static_cast<double>(counters.code_comparisons) * c.code_compare +
         static_cast<double>(counters.hash_computations) * c.hash_row +
         static_cast<double>(counters.bytes_spilled) * c.spill_byte;
}

class CostModelTest : public ::testing::Test {
 protected:
  /// An unsorted table with exact distinct-prefix statistics attached (the
  /// same shape the SQL catalog provides for generated tables).
  TableSource StatsSource(const std::string& name, const Schema* schema,
                          const RowBuffer* buffer, double distinct) {
    TableSource source = BufferSource(name, schema, buffer);
    double prefix = 1.0;
    for (uint32_t k = 0; k < schema->key_arity(); ++k) {
      prefix = std::min(prefix * distinct,
                        static_cast<double>(buffer->size()));
      source.stats.key_distinct.push_back(prefix);
    }
    return source;
  }

  PhysicalPlan Plan(LogicalNode* root, PlannerOptions options = {}) {
    Planner planner(&counters_, &temp_, options);
    return planner.Plan(root);
  }

  QueryCounters counters_;
  TempFileManager temp_;
};

// ---------------------------------------------------------------------------
// Cardinality propagation
// ---------------------------------------------------------------------------

TEST_F(CostModelTest, ScanCardinalityComesFromStats) {
  Schema schema(2, 1);
  RowBuffer table = testing::MakeTable(schema, 600, 4, /*seed=*/1);
  auto logical =
      PlanBuilder::Scan(StatsSource("t", &schema, &table, 4.0)).Build();
  AnnotateCardinalities(logical.get(), CostConstants::Calibrated());

  EXPECT_DOUBLE_EQ(logical->card.rows, 600.0);
  EXPECT_DOUBLE_EQ(logical->card.DistinctPrefix(1), 4.0);
  EXPECT_DOUBLE_EQ(logical->card.DistinctPrefix(2), 16.0);
}

TEST_F(CostModelTest, ScanCardinalityDefaultsWithoutStats) {
  Schema schema(1, 0);
  RowBuffer table = testing::MakeTable(schema, 1000, 10, /*seed=*/1);
  auto logical = PlanBuilder::Scan(BufferSource("t", &schema, &table)).Build();
  AnnotateCardinalities(logical.get(), CostConstants::Calibrated());

  // Row count comes from the buffer even without explicit statistics;
  // distinct falls back to rows^(2/3).
  EXPECT_DOUBLE_EQ(logical->card.rows, 1000.0);
  EXPECT_NEAR(logical->card.DistinctPrefix(1), 100.0, 1.0);
}

TEST_F(CostModelTest, FilterJoinAggregatePropagation) {
  Schema schema(1, 1);
  RowBuffer left = testing::MakeTable(schema, 1000, 50, /*seed=*/1);
  RowBuffer right = testing::MakeTable(schema, 200, 50, /*seed=*/2);
  auto logical =
      PlanBuilder::Scan(StatsSource("l", &schema, &left, 50.0))
          .Filter([](const uint64_t*) { return true; })
          .Join(PlanBuilder::Scan(StatsSource("r", &schema, &right, 50.0)),
                JoinType::kInner)
          .Aggregate(1, {{AggFn::kCount, 0}})
          .Build();
  const CostConstants c = CostConstants::Calibrated();
  AnnotateCardinalities(logical.get(), c);

  const LogicalNode* aggregate = logical.get();
  const LogicalNode* join = aggregate->children[0].get();
  const LogicalNode* filter = join->children[0].get();

  EXPECT_DOUBLE_EQ(filter->card.rows, 1000.0 * c.filter_selectivity);
  // Equi-join estimate: |L| * |R| / max(d_l, d_r).
  EXPECT_NEAR(join->card.rows, filter->card.rows * 200.0 / 50.0, 1e-6);
  // The aggregate's output is the distinct grouping prefix.
  EXPECT_NEAR(aggregate->card.rows, 50.0, 1e-6);
}

TEST_F(CostModelTest, LimitCapsCardinality) {
  Schema schema(1, 0);
  RowBuffer table = testing::MakeTable(schema, 500, 16, /*seed=*/3);
  auto logical = PlanBuilder::Scan(StatsSource("t", &schema, &table, 16.0))
                     .Limit(7)
                     .Build();
  AnnotateCardinalities(logical.get(), CostConstants::Calibrated());
  EXPECT_DOUBLE_EQ(logical->card.rows, 7.0);
}

// ---------------------------------------------------------------------------
// Estimates surfaced through the physical plan
// ---------------------------------------------------------------------------

TEST_F(CostModelTest, PlanCarriesPerNodeEstimatesAndExplainRendersThem) {
  Schema schema(2, 1);
  RowBuffer table = testing::MakeTable(schema, 800, 8, /*seed=*/4);
  auto logical = PlanBuilder::Scan(StatsSource("t", &schema, &table, 8.0))
                     .Filter([](const uint64_t*) { return true; })
                     .Sort()
                     .Build();
  PhysicalPlan plan = Plan(logical.get());

  ASSERT_EQ(plan.node_estimates().size(), plan.algorithms().size());
  for (const NodeEstimate& est : plan.node_estimates()) {
    EXPECT_GT(est.rows, 0.0);
    EXPECT_GT(est.cost, 0.0);
  }
  EXPECT_GT(plan.root_estimate().cost, 0.0);
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("{rows="), std::string::npos) << text;
  EXPECT_NE(text.find("cost="), std::string::npos) << text;
}

TEST_F(CostModelTest, ElidedSortAddsNoCost) {
  Schema schema(2, 0);
  RowBuffer sorted = testing::MakeTable(schema, 400, 8, /*seed=*/5,
                                        /*sorted=*/true);
  InMemoryRun run = testing::RunFromSorted(schema, sorted);
  auto logical =
      PlanBuilder::Scan(RunSource("run", &schema, &run)).Sort().Build();
  PhysicalPlan plan = Plan(logical.get());

  ASSERT_TRUE(plan.Uses(PhysicalAlg::kElidedSort));
  // The elided sort's cumulative estimate equals its child's: resorting
  // sorted coded input is free, which is why elision always wins.
  ASSERT_EQ(plan.node_estimates().size(), 2u);
  EXPECT_DOUBLE_EQ(plan.node_estimates()[0].cost,
                   plan.node_estimates()[1].cost);
}

// ---------------------------------------------------------------------------
// Cost-based decisions, ranked against measured counter costs
// ---------------------------------------------------------------------------

TEST_F(CostModelTest, ResidentAggregationStaysHashAndMeasurementAgrees) {
  // 30k rows, 4 groups, everything resident: hashing each row beats a
  // full-size run-generation tournament (duplicate collapse shrinks what
  // a sort *spills*, not its tree), so the cost-based planner keeps the
  // hash aggregate in memory -- and pricing the measured counters with
  // the same constants ranks the same way.
  Schema schema(1, 1);
  RowBuffer table = testing::MakeTable(schema, 30000, 4, /*seed=*/11);
  const auto build = [&] {
    return PlanBuilder::Scan(StatsSource("dup", &schema, &table, 4.0))
        .Aggregate(1, {{AggFn::kSum, 1}})
        .Build();
  };

  plan::PlanExecutor::Options exec_options;
  exec_options.validate = false;  // keep the measured runs fast in Debug

  // Cost-based: keeps the hash aggregate.
  QueryCounters hash_counters;
  plan::PlanExecutor hash_exec(&hash_counters, &temp_, exec_options);
  auto logical_a = build();
  plan::ExecutionResult hash_result = hash_exec.Run(logical_a.get());
  EXPECT_TRUE(hash_exec.last_plan()->Uses(PhysicalAlg::kHashAggregate))
      << hash_exec.last_plan()->ToString();
  const double est_hash = hash_exec.last_plan()->root_estimate().cost;

  // The sort-based alternative, forced: in-sort aggregation.
  exec_options.planner.prefer_sort_based = true;
  QueryCounters in_sort_counters;
  plan::PlanExecutor in_sort_exec(&in_sort_counters, &temp_, exec_options);
  auto logical_b = build();
  plan::ExecutionResult in_sort_result = in_sort_exec.Run(logical_b.get());
  EXPECT_TRUE(in_sort_exec.last_plan()->Uses(PhysicalAlg::kInSortAggregate));
  const double est_in_sort = in_sort_exec.last_plan()->root_estimate().cost;

  // Same rows either way (order aside).
  EXPECT_EQ(in_sort_result.row_count(), hash_result.row_count());

  // The estimator ranks hash cheaper, and so do the measured counters.
  EXPECT_LT(est_hash, est_in_sort);
  const CostConstants c = exec_options.planner.cost_constants;
  EXPECT_LT(MeasuredCost(hash_counters, c), MeasuredCost(in_sort_counters, c));
}

TEST_F(CostModelTest, GroupsBeyondHashBudgetFlipToInSortAndMeasurementAgrees) {
  // The aggregation flavor of the Figure 6 race: 40k rows over 5000
  // groups with a 1000-group hash budget. The hash table spills most of
  // its input to partitions; duplicate collapse keeps the sort fully
  // resident. The cost-based planner flips to the in-sort aggregate, and
  // the measured counter costs (including spilled bytes) rank the same
  // way.
  Schema schema(1, 1);
  RowBuffer table = testing::MakeTable(schema, 40000, 5000, /*seed=*/12);
  const auto build = [&] {
    return PlanBuilder::Scan(StatsSource("mid", &schema, &table, 5000.0))
        .Aggregate(1, {{AggFn::kCount, 0}})
        .Build();
  };

  plan::PlanExecutor::Options exec_options;
  exec_options.validate = false;
  exec_options.planner.hash_memory_rows = 1000;
  // This test measures the *partitioning* cost of an overflowing hash
  // aggregate; pin the fallback policy so graceful degradation does not
  // turn the hash plan into the sort plan it is being compared against.
  exec_options.planner.fallback = FallbackPolicy::kPartition;

  // Cost-based under the tiny budget: in-sort aggregation, no hashing.
  QueryCounters in_sort_counters;
  plan::PlanExecutor in_sort_exec(&in_sort_counters, &temp_, exec_options);
  auto logical_a = build();
  in_sort_exec.Run(logical_a.get());
  EXPECT_TRUE(in_sort_exec.last_plan()->Uses(PhysicalAlg::kInSortAggregate))
      << in_sort_exec.last_plan()->ToString();
  const double est_in_sort = in_sort_exec.last_plan()->root_estimate().cost;

  // Rule-based ignores the budget and hashes (the pre-PR5 policy).
  exec_options.planner.cost_policy = CostPolicy::kRuleBased;
  QueryCounters hash_counters;
  plan::PlanExecutor hash_exec(&hash_counters, &temp_, exec_options);
  auto logical_b = build();
  hash_exec.Run(logical_b.get());
  EXPECT_TRUE(hash_exec.last_plan()->Uses(PhysicalAlg::kHashAggregate));
  const double est_hash = hash_exec.last_plan()->root_estimate().cost;
  EXPECT_GT(hash_counters.bytes_spilled, 0u);

  EXPECT_LT(est_in_sort, est_hash);
  const CostConstants c = exec_options.planner.cost_constants;
  EXPECT_LT(MeasuredCost(in_sort_counters, c), MeasuredCost(hash_counters, c));
}

TEST_F(CostModelTest, InMemoryJoinPrefersGraceHashAndMeasurementAgrees) {
  // Foreign-key-ish join of two unsorted 20k-row tables, everything
  // resident: hashing both sides beats sorting both sides.
  Schema schema(1, 1);
  RowBuffer left = testing::MakeTable(schema, 20000, 20000, /*seed=*/13);
  RowBuffer right = testing::MakeTable(schema, 20000, 20000, /*seed=*/14);
  const auto build = [&] {
    return PlanBuilder::Scan(StatsSource("l", &schema, &left, 20000.0))
        .Join(PlanBuilder::Scan(StatsSource("r", &schema, &right, 20000.0)),
              JoinType::kInner)
        .Build();
  };

  plan::PlanExecutor::Options exec_options;
  exec_options.validate = false;

  QueryCounters grace_counters;
  plan::PlanExecutor grace_exec(&grace_counters, &temp_, exec_options);
  auto logical_a = build();
  grace_exec.Run(logical_a.get());
  EXPECT_TRUE(grace_exec.last_plan()->Uses(PhysicalAlg::kGraceHashJoin))
      << grace_exec.last_plan()->ToString();
  const double est_grace = grace_exec.last_plan()->root_estimate().cost;

  // The sort-based alternative (forced): sorts both inputs, merge joins.
  exec_options.planner.prefer_sort_based = true;
  QueryCounters sort_counters;
  plan::PlanExecutor sort_exec(&sort_counters, &temp_, exec_options);
  auto logical_b = build();
  sort_exec.Run(logical_b.get());
  EXPECT_TRUE(sort_exec.last_plan()->Uses(PhysicalAlg::kMergeJoin));
  const double est_sort_merge = sort_exec.last_plan()->root_estimate().cost;

  EXPECT_LT(est_grace, est_sort_merge);
  const CostConstants c = exec_options.planner.cost_constants;
  EXPECT_LT(MeasuredCost(grace_counters, c), MeasuredCost(sort_counters, c));
}

TEST_F(CostModelTest, TinyHashBudgetFlipsJoinToSortMergeAndMeasurementAgrees) {
  // The Figure 6 race: the same join with a hash memory budget far below
  // the build side. Grace hash now pays a full partition write+read round
  // trip for both sides; the sorts fit in memory and spill nothing -- the
  // cost-based planner flips to sort + merge join, and the measured
  // counter costs (including the spilled bytes) rank the same way.
  Schema schema(1, 1);
  RowBuffer left = testing::MakeTable(schema, 20000, 20000, /*seed=*/15);
  RowBuffer right = testing::MakeTable(schema, 20000, 20000, /*seed=*/16);
  const auto build = [&] {
    return PlanBuilder::Scan(StatsSource("l", &schema, &left, 20000.0))
        .Join(PlanBuilder::Scan(StatsSource("r", &schema, &right, 20000.0)),
              JoinType::kInner)
        .Build();
  };

  plan::PlanExecutor::Options exec_options;
  exec_options.validate = false;
  exec_options.planner.hash_memory_rows = 512;
  // As above: the rule-based run must actually pay the grace partition
  // round trip, not gracefully degrade into the competing sort plan.
  exec_options.planner.fallback = FallbackPolicy::kPartition;

  // Cost-based with the tiny budget: sort + merge join, no hash join.
  QueryCounters sort_counters;
  plan::PlanExecutor sort_exec(&sort_counters, &temp_, exec_options);
  auto logical_a = build();
  sort_exec.Run(logical_a.get());
  EXPECT_TRUE(sort_exec.last_plan()->Uses(PhysicalAlg::kMergeJoin))
      << sort_exec.last_plan()->ToString();
  EXPECT_FALSE(sort_exec.last_plan()->Uses(PhysicalAlg::kGraceHashJoin));
  const double est_sort_merge = sort_exec.last_plan()->root_estimate().cost;

  // Rule-based ignores the budget and grace-hashes (the pre-PR5 policy).
  exec_options.planner.cost_policy = CostPolicy::kRuleBased;
  QueryCounters grace_counters;
  plan::PlanExecutor grace_exec(&grace_counters, &temp_, exec_options);
  auto logical_b = build();
  grace_exec.Run(logical_b.get());
  EXPECT_TRUE(grace_exec.last_plan()->Uses(PhysicalAlg::kGraceHashJoin));
  const double est_grace = grace_exec.last_plan()->root_estimate().cost;
  EXPECT_GT(grace_counters.bytes_spilled, 0u);

  EXPECT_LT(est_sort_merge, est_grace);
  const CostConstants c = exec_options.planner.cost_constants;
  EXPECT_LT(MeasuredCost(sort_counters, c), MeasuredCost(grace_counters, c));
}

TEST_F(CostModelTest, SortedInputKeepsInStreamAggregate) {
  // Over sorted coded input the in-stream aggregate costs one code
  // comparison per row -- the estimator prices it far below a hash
  // aggregate of the same stream, and the planner picks it.
  Schema schema(2, 0);
  RowBuffer sorted = testing::MakeTable(schema, 10000, 8, /*seed=*/17,
                                        /*sorted=*/true);
  InMemoryRun run = testing::RunFromSorted(schema, sorted);
  auto logical = PlanBuilder::Scan(RunSource("run", &schema, &run))
                     .Aggregate(1, {{AggFn::kCount, 0}})
                     .Build();
  PhysicalPlan plan = Plan(logical.get());
  EXPECT_TRUE(plan.Uses(PhysicalAlg::kInStreamAggregate));

  const CostModel model(CostConstants::Calibrated(), SortConfig(),
                        uint64_t{1} << 20);
  const double in_stream =
      model.InStreamAggregate(10000.0, 8.0, 1, /*input_coded=*/true);
  const double hash = model.HashAggregate(10000.0, 8.0, 2);
  EXPECT_LT(in_stream, hash);
}

// ---------------------------------------------------------------------------
// Estimate-versus-actual: per-node Q-errors from profiled scenario runs
// ---------------------------------------------------------------------------

TEST_F(CostModelTest, ProfiledScenariosRecordPerNodeQErrors) {
  // Re-runs the cost-model scenario shapes with per-operator profiling on
  // and records each node's Q-error (max(actual/est, est/actual)) into the
  // test log -- the estimator's per-node report card. Exact-stats scans
  // must estimate perfectly; derived nodes are sanity-bounded, not pinned,
  // since their estimates use generic selectivity/distinct models.
  struct Scenario {
    const char* name;
    std::function<std::unique_ptr<LogicalNode>()> build;
  };

  Schema agg_schema(1, 1);
  RowBuffer agg_table = testing::MakeTable(agg_schema, 30000, 4, /*seed=*/11);
  Schema join_schema(1, 1);
  RowBuffer left = testing::MakeTable(join_schema, 20000, 20000, /*seed=*/13);
  RowBuffer right = testing::MakeTable(join_schema, 20000, 20000, /*seed=*/14);

  const Scenario scenarios[] = {
      {"resident-aggregation",
       [&] {
         return PlanBuilder::Scan(StatsSource("dup", &agg_schema, &agg_table,
                                              4.0))
             .Aggregate(1, {{AggFn::kSum, 1}})
             .Build();
       }},
      {"in-memory-join",
       [&] {
         return PlanBuilder::Scan(StatsSource("l", &join_schema, &left,
                                              20000.0))
             .Join(PlanBuilder::Scan(
                       StatsSource("r", &join_schema, &right, 20000.0)),
                   JoinType::kInner)
             .Build();
       }},
  };

  plan::PlanExecutor::Options exec_options;
  exec_options.validate = false;  // keep the measured runs fast in Debug
  exec_options.planner.profile = true;

  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    QueryCounters counters;
    plan::PlanExecutor executor(&counters, &temp_, exec_options);
    auto logical = scenario.build();
    executor.Run(logical.get());

    const QueryProfile* profile = executor.last_plan()->profile();
    ASSERT_NE(profile, nullptr);
    std::printf("[ q-error  ] scenario %s (worst q=%.2f)\n", scenario.name,
                profile->WorstQError());
    for (int i = 0; i < static_cast<int>(profile->nodes().size()); ++i) {
      const QueryProfile::Node& node = profile->nodes()[i];
      const double q = profile->QError(i);
      std::printf("[ q-error  ]   %-40s est=%-8.0f actual=%-8llu q=%.2f\n",
                  node.label.c_str(), node.est_rows,
                  static_cast<unsigned long long>(profile->ActualRows(i)), q);
      EXPECT_GE(q, 1.0);
      // Scans carry exact statistics here, so their estimates are perfect.
      if (!node.table.empty()) EXPECT_DOUBLE_EQ(q, 1.0);
      // Derived estimates can err, but the scenario shapes are the ones
      // the model was built around -- a blow-up past 10x is a regression.
      EXPECT_LT(q, 10.0) << node.label;
    }
  }
}

// ---------------------------------------------------------------------------
// Policy pinning and overrides
// ---------------------------------------------------------------------------

TEST_F(CostModelTest, RuleBasedPolicyReproducesPrePR5Choices) {
  Schema schema(2, 1);
  RowBuffer table = testing::MakeTable(schema, 500, 4, /*seed=*/18);
  PlannerOptions rule;
  rule.cost_policy = CostPolicy::kRuleBased;

  {  // Unsorted join: grace hash, unconditionally.
    auto logical =
        PlanBuilder::Scan(BufferSource("l", &schema, &table))
            .Join(PlanBuilder::Scan(BufferSource("r", &schema, &table)),
                  JoinType::kInner)
            .Build();
    PhysicalPlan plan = Plan(logical.get(), rule);
    EXPECT_TRUE(plan.Uses(PhysicalAlg::kGraceHashJoin));
  }
  {  // Unsorted aggregate without order interest: hash, unconditionally.
    auto logical = PlanBuilder::Scan(BufferSource("t", &schema, &table))
                       .Aggregate(1, {{AggFn::kCount, 0}})
                       .Build();
    PhysicalPlan plan = Plan(logical.get(), rule);
    EXPECT_TRUE(plan.Uses(PhysicalAlg::kHashAggregate));
  }
  {  // Order-interested aggregate: in-sort, no standalone sort.
    auto logical = PlanBuilder::Scan(BufferSource("t", &schema, &table))
                       .Aggregate(1, {{AggFn::kCount, 0}})
                       .Distinct()
                       .Build();
    PhysicalPlan plan = Plan(logical.get(), rule);
    EXPECT_TRUE(plan.Uses(PhysicalAlg::kInSortAggregate));
    EXPECT_EQ(plan.inserted_sorts(), 0u);
  }
}

TEST_F(CostModelTest, ConstantsOverrideFlipsDecisions) {
  // Pricing hashing as catastrophically expensive flips an aggregation
  // the calibrated constants would hash over to the in-sort aggregate:
  // the constants really drive the decision.
  Schema schema(2, 0);
  RowBuffer table = testing::MakeTable(schema, 50000, 16, /*seed=*/19);
  auto logical = PlanBuilder::Scan(StatsSource("t", &schema, &table, 16.0))
                     .Aggregate(2, {{AggFn::kCount, 0}})
                     .Build();

  PlannerOptions expensive_hash;
  expensive_hash.cost_constants.hash_row = 1000.0;
  PhysicalPlan plan = Plan(logical.get(), expensive_hash);
  EXPECT_TRUE(plan.Uses(PhysicalAlg::kInSortAggregate)) << plan.ToString();
}

}  // namespace
}  // namespace ovc
