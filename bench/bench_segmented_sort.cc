// Claim 1, segmentation (Section 4.3): a stream sorted on (A, B) but needed
// on (A, C). Segmented sort -- boundaries detected from codes, each segment
// sorted only on C -- vs a full re-sort of the entire stream on (A, C).

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sort/external_sort.h"
#include "sort/segmented_sort.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1000000;
constexpr uint32_t kArity = 6;       // (A1, A2, C1..C4)
constexpr uint32_t kSegPrefix = 2;   // A = 2 columns
constexpr uint64_t kDistinct = 8;

struct Fixture {
  Schema schema{kArity, 1};
  RowBuffer table{schema.total_columns()};
  InMemoryRun run{schema.total_columns()};

  Fixture() {
    // Input sorted on the segmentation prefix (A); arbitrary within
    // segments (it was sorted on (A, B) for some other B).
    table = bench::MakeTable(schema, kRows, kDistinct, /*seed=*/81);
    Schema prefix_schema(kSegPrefix, schema.total_columns() - kSegPrefix);
    SortRowsForTest(prefix_schema, &table);
    OvcCodec codec(&schema);
    KeyComparator cmp(&schema, nullptr);
    run.Reserve(table.size());
    for (size_t i = 0; i < table.size(); ++i) {
      Ovc code = i == 0 ? codec.MakeInitial(table.row(i))
                        : codec.MakeFromRow(
                              table.row(i),
                              cmp.FirstDifference(table.row(i - 1),
                                                  table.row(i), 0));
      run.Append(table.row(i), code);
    }
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void SegmentedSort(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  QueryCounters counters;
  for (auto _ : state) {
    InMemoryRunSource source(&fixture.run);
    SegmentedSorter sorter(&fixture.schema, kSegPrefix, &counters);
    sorter.SetInput(&source);
    RowRef ref;
    uint64_t n = 0;
    while (sorter.Next(&ref)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kRows);
}

void FullResort(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  QueryCounters counters;
  for (auto _ : state) {
    TempFileManager temp;
    SortConfig config;
    config.memory_rows = kRows + 1;  // in-memory, like the segmented path
    ExternalSort sort(&fixture.schema, &counters, &temp, config);
    for (size_t i = 0; i < fixture.table.size(); ++i) {
      sort.Add(fixture.table.row(i));
    }
    OVC_CHECK_OK(sort.Finish());
    RowRef ref;
    uint64_t n = 0;
    while (sort.Next(&ref)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kRows);
}

BENCHMARK(SegmentedSort)->Unit(benchmark::kMillisecond);
BENCHMARK(FullResort)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
