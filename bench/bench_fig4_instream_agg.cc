// Figure 4: "Group boundaries from offset-value codes".
//
// In-stream aggregation over a sorted input of 1,000,000 rows with many key
// columns. The input/output row ratio (group size) sweeps 1..100. Two
// boundary-detection strategies:
//   * offset-value codes: one integer test per row ("testing the offset
//     against the count of grouping columns"),
//   * full comparisons of multiple key columns (the baseline).
// The paper's result: the code-based test is much faster at every ratio,
// and the advantage persists as groups grow.

#include <algorithm>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/aggregate.h"
#include "exec/scan.h"

namespace ovc {
namespace {

constexpr uint64_t kInputRows = 1000000;
constexpr uint32_t kKeyColumns = 8;  // "many key columns"
constexpr uint64_t kDistinctPerColumn = 8;

struct Fixture {
  explicit Fixture(uint64_t ratio)
      : schema(kKeyColumns, 1), run(schema.total_columns()) {
    const uint64_t groups = kInputRows / ratio;
    RowBuffer table(schema.total_columns());
    GenerateGroupedRows(schema, groups, ratio, kDistinctPerColumn,
                        /*seed=*/ratio, &table);
    run = bench::RunFromSorted(schema, table);
  }

  Schema schema;
  InMemoryRun run;
};

Fixture& GetFixture(uint64_t ratio) {
  // One prepared input per ratio, built once and reused across iterations
  // ("each experiment starts with a warm cache").
  static std::map<uint64_t, std::unique_ptr<Fixture>>* cache =
      new std::map<uint64_t, std::unique_ptr<Fixture>>();
  auto it = cache->find(ratio);
  if (it == cache->end()) {
    it = cache->emplace(ratio, std::make_unique<Fixture>(ratio)).first;
  }
  return *it->second;
}

void BM_InStreamAgg(benchmark::State& state, bool use_ovc) {
  const uint64_t ratio = static_cast<uint64_t>(state.range(0));
  Fixture& fixture = GetFixture(ratio);
  QueryCounters counters;
  for (auto _ : state) {
    RunScan scan(&fixture.schema, &fixture.run);
    InStreamAggregate::Options options;
    options.use_ovc_boundaries = use_ovc;
    InStreamAggregate agg(&scan, kKeyColumns, {{AggFn::kCount, 0}}, &counters,
                          options);
    agg.Open();
    RowRef ref;
    uint64_t groups = 0;
    while (agg.Next(&ref)) ++groups;
    agg.Close();
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(state.iterations() * kInputRows);
  state.counters["ratio"] = static_cast<double>(ratio);
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

void OvcBoundaries(benchmark::State& state) { BM_InStreamAgg(state, true); }
void FullComparisons(benchmark::State& state) {
  BM_InStreamAgg(state, false);
}

BENCHMARK(OvcBoundaries)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(FullComparisons)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
