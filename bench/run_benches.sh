#!/usr/bin/env bash
# Runs the key benchmarks with --benchmark_format=json and aggregates all
# results into a single JSON file. Each PR commits its aggregate as
# BENCH_PR<n>.json at the repo root (the benchmark trajectory); the output
# name is parametrized -- pass -o or set $BENCH_OUT, the default below
# names the current PR's aggregate.
#
# Usage:
#   bench/run_benches.sh [-B build_dir] [-o out.json] [--smoke]
#
#   -B dir    build directory holding the bench binaries (default: build)
#   -o file   aggregate output path (default: $BENCH_OUT, else the
#             current PR's BENCH_PR<n>.json)
#   --smoke   CI mode: tiny --benchmark_min_time so the binaries and this
#             script are exercised end-to-end without burning CI minutes
#
# Benchmarks are built on demand if the binaries are missing. The subset
# includes the batched pipelines, the pq/sort suites the cost model's
# constants are calibrated from (see docs/COST_MODEL.md), the exchange
# merge (OVC vs plain, threaded), the planner's parallel sort shape at
# 1/2/4 workers (multi-worker scaling is bounded by the machine's core
# count), the SQL end-to-end suite, the serving-layer QPS suite (ovcd
# over loopback at 1/8/64 clients, plan cache cold vs warm -- see
# docs/SERVING.md), and the two overhead checks --
# profiling and metrics+tracing, each instrumented vs bare on the batched
# pipeline (see docs/OBSERVABILITY.md); tools/compare_bench.py enforces
# the 2% budget and cross-PR regressions on the committed aggregates.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT=${BENCH_OUT:-BENCH_PR10.json}
MIN_TIME=0.5
BENCHES=(bench_batch_pipeline bench_pq_merge bench_sort_ovc
         bench_exchange_merge bench_parallel_sort bench_sql_e2e
         bench_profile_overhead bench_metrics_overhead bench_serving)

while [[ $# -gt 0 ]]; do
  case "$1" in
    -B) BUILD_DIR=$2; shift 2 ;;
    -o) OUT=$2; shift 2 ;;
    --smoke) MIN_TIME=0.01; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

for bench in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "== building $bench"
    cmake --build "$BUILD_DIR" --target "$bench" -j "$(nproc)"
  fi
done

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for bench in "${BENCHES[@]}"; do
  echo "== running $bench (min_time=${MIN_TIME}s)"
  "$BUILD_DIR/$bench" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    > "$tmpdir/$bench.json"
done

python3 - "$OUT" "$tmpdir" "${BENCHES[@]}" <<'PYEOF'
import json
import sys
from datetime import datetime, timezone

out_path, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]

aggregate = {
    "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "context": None,
    "benchmarks": [],
}
for bench in benches:
    with open(f"{tmpdir}/{bench}.json") as f:
        data = json.load(f)
    if aggregate["context"] is None:
        aggregate["context"] = data.get("context", {})
    for entry in data.get("benchmarks", []):
        entry = dict(entry)
        entry["binary"] = bench
        aggregate["benchmarks"].append(entry)

with open(out_path, "w") as f:
    json.dump(aggregate, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(aggregate['benchmarks'])} benchmark entries)")
PYEOF
