// Exchange-parallel sort (Section 4.10): the planner's flagship parallel
// shape -- round-robin split, partition-parallel run generation (one sort
// per worker), code-preserving merge-exchange -- at 1/2/4 workers, against
// the serial sort plan as the 1-worker baseline.
//
// Measured with real time (producer threads do the sorting); the scaling
// these numbers show is bounded by the machine's core count, so expect
// near-flat curves on single-core CI runners and real speedup on
// multi-core hardware. column_cmp_per_row tracks the rolled-up per-worker
// comparison totals, which stay hardware-independent.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/logical_plan.h"
#include "plan/plan_executor.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1 << 20;
constexpr uint32_t kArity = 4;
constexpr uint64_t kDistinct = 64;

struct Fixture {
  Schema schema{kArity, 1};
  RowBuffer table;

  Fixture() : table(bench::MakeTable(schema, kRows, kDistinct, /*seed=*/7)) {}
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void ParallelSortPlan(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  QueryCounters counters;
  TempFileManager temp;
  plan::PlanExecutor::Options options;
  options.planner.parallelism = workers;
  options.planner.exchange.threaded = true;
  options.validate = false;
  plan::PlanExecutor executor(&counters, &temp, options);
  for (auto _ : state) {
    auto logical =
        plan::PlanBuilder::Scan(
            plan::BufferSource("t", &fixture.schema, &fixture.table))
            .Sort()
            .Build();
    plan::ExecutionResult result = executor.Run(logical.get());
    benchmark::DoNotOptimize(result.row_count());
    OVC_CHECK(result.row_count() == kRows);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kRows);
  state.counters["workers"] = workers;
}

BENCHMARK(ParallelSortPlan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ovc
