// Claim 1 core (Figures 1-3 machinery): tree-of-losers merge with
// offset-value coding vs the same tournament with full key comparisons,
// across merge fan-ins. Also prices the Section 5 duplicate bypass.

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "pq/loser_tree.h"
#include "pq/plain_loser_tree.h"

namespace ovc {
namespace {

constexpr uint64_t kTotalRows = 1000000;
constexpr uint32_t kArity = 8;
constexpr uint64_t kDistinct = 4;

struct Fixture {
  Schema schema{kArity};
  std::vector<std::unique_ptr<InMemoryRun>> runs;

  explicit Fixture(uint32_t fan_in) {
    for (uint32_t r = 0; r < fan_in; ++r) {
      RowBuffer t = bench::MakeTable(schema, kTotalRows / fan_in, kDistinct,
                                     /*seed=*/100 + r, /*sorted=*/true);
      runs.push_back(
          std::make_unique<InMemoryRun>(bench::RunFromSorted(schema, t)));
    }
  }
};

Fixture& GetFixture(uint32_t fan_in) {
  static std::map<uint32_t, std::unique_ptr<Fixture>>* cache =
      new std::map<uint32_t, std::unique_ptr<Fixture>>();
  auto it = cache->find(fan_in);
  if (it == cache->end()) {
    it = cache->emplace(fan_in, std::make_unique<Fixture>(fan_in)).first;
  }
  return *it->second;
}

void OvcMerge(benchmark::State& state) {
  const uint32_t fan_in = static_cast<uint32_t>(state.range(0));
  Fixture& fixture = GetFixture(fan_in);
  OvcCodec codec(&fixture.schema);
  QueryCounters counters;
  KeyComparator comparator(&fixture.schema, &counters);
  for (auto _ : state) {
    std::vector<std::unique_ptr<InMemoryRunSource>> sources;
    std::vector<MergeSource*> raw;
    for (auto& run : fixture.runs) {
      sources.push_back(std::make_unique<InMemoryRunSource>(run.get()));
      raw.push_back(sources.back().get());
    }
    OvcMerger merger(&codec, &comparator, raw);
    RowRef ref;
    uint64_t n = 0;
    while (merger.Next(&ref)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kTotalRows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kTotalRows);
  state.counters["bypass_per_iter"] = static_cast<double>(
      counters.merge_bypass_rows / std::max<uint64_t>(1, state.iterations()));
}

void PlainMerge(benchmark::State& state) {
  const uint32_t fan_in = static_cast<uint32_t>(state.range(0));
  Fixture& fixture = GetFixture(fan_in);
  OvcCodec codec(&fixture.schema);
  QueryCounters counters;
  KeyComparator comparator(&fixture.schema, &counters);
  for (auto _ : state) {
    std::vector<std::unique_ptr<InMemoryRunSource>> sources;
    std::vector<MergeSource*> raw;
    for (auto& run : fixture.runs) {
      sources.push_back(std::make_unique<InMemoryRunSource>(run.get()));
      raw.push_back(sources.back().get());
    }
    PlainMerger merger(&codec, &comparator, raw);
    RowRef ref;
    uint64_t n = 0;
    while (merger.Next(&ref)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kTotalRows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kTotalRows);
}

BENCHMARK(OvcMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(PlainMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
