// Claim 1, order-preserving (merging) exchange (Section 4.10): the
// many-to-one merge with offset-value codes vs the same merge with full
// comparisons. Single-threaded pull mode isolates comparison costs from
// thread scheduling, per the paper's single-thread methodology; a threaded
// configuration is included for completeness.

#include <algorithm>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/exchange.h"
#include "exec/scan.h"

namespace ovc {
namespace {

constexpr uint64_t kTotalRows = 1000000;
constexpr uint32_t kInputs = 8;
constexpr uint32_t kArity = 8;
constexpr uint64_t kDistinct = 4;

struct Fixture {
  Schema schema{kArity};
  std::vector<std::unique_ptr<InMemoryRun>> runs;

  Fixture() {
    for (uint32_t i = 0; i < kInputs; ++i) {
      RowBuffer t = bench::MakeTable(schema, kTotalRows / kInputs, kDistinct,
                                     /*seed=*/90 + i, /*sorted=*/true);
      runs.push_back(
          std::make_unique<InMemoryRun>(bench::RunFromSorted(schema, t)));
    }
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void RunExchange(benchmark::State& state, bool use_ovc, bool threaded) {
  Fixture& fixture = GetFixture();
  QueryCounters counters;
  for (auto _ : state) {
    std::vector<std::unique_ptr<RunScan>> scans;
    std::vector<Operator*> inputs;
    for (auto& run : fixture.runs) {
      scans.push_back(std::make_unique<RunScan>(&fixture.schema, run.get()));
      inputs.push_back(scans.back().get());
    }
    MergeExchange::Options options;
    options.use_ovc = use_ovc;
    options.threaded = threaded;
    MergeExchange exchange(inputs, &counters, options);
    exchange.Open();
    RowRef ref;
    uint64_t n = 0;
    while (exchange.Next(&ref)) ++n;
    exchange.Close();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kTotalRows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kTotalRows);
}

void OvcMergeExchange(benchmark::State& state) {
  RunExchange(state, /*use_ovc=*/true, /*threaded=*/false);
}
void PlainMergeExchange(benchmark::State& state) {
  RunExchange(state, /*use_ovc=*/false, /*threaded=*/false);
}
void OvcMergeExchangeThreaded(benchmark::State& state) {
  RunExchange(state, /*use_ovc=*/true, /*threaded=*/true);
}

BENCHMARK(OvcMergeExchange)->Unit(benchmark::kMillisecond);
BENCHMARK(PlainMergeExchange)->Unit(benchmark::kMillisecond);
BENCHMARK(OvcMergeExchangeThreaded)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ovc
