// Section 3 / Section 5 run generation: merging single-row runs (one big
// tournament), cache-sized mini-runs, replacement selection (longer runs,
// one extra comparison per row), and the std::sort baseline. Reports run
// counts next to time: replacement selection halves the run count.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sort/external_sort.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1000000;
constexpr uint64_t kMemoryRows = 1 << 16;
constexpr uint32_t kArity = 4;
constexpr uint64_t kDistinct = 16;

const RowBuffer& GetTable() {
  static const RowBuffer* table = [] {
    Schema schema(kArity);
    return new RowBuffer(
        bench::MakeTable(schema, kRows, kDistinct, /*seed=*/55));
  }();
  return *table;
}

void RunGen(benchmark::State& state, RunGenMode mode,
            bool replacement_selection) {
  Schema schema(kArity);
  const RowBuffer& table = GetTable();
  QueryCounters counters;
  uint64_t runs = 0;
  for (auto _ : state) {
    TempFileManager temp;
    SortConfig config;
    config.memory_rows = kMemoryRows;
    config.run_gen = mode;
    config.replacement_selection = replacement_selection;
    ExternalSort sort(&schema, &counters, &temp, config);
    for (size_t i = 0; i < table.size(); ++i) sort.Add(table.row(i));
    OVC_CHECK_OK(sort.Finish());
    RowRef ref;
    uint64_t n = 0;
    while (sort.Next(&ref)) ++n;
    benchmark::DoNotOptimize(n);
    runs = sort.spilled_runs();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["initial_runs"] = static_cast<double>(runs);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * kRows);
}

void SingleRowRuns(benchmark::State& state) {
  RunGen(state, RunGenMode::kPqSingleRowRuns, false);
}
void MiniRuns(benchmark::State& state) {
  RunGen(state, RunGenMode::kPqMiniRuns, false);
}
void StdSortRuns(benchmark::State& state) {
  RunGen(state, RunGenMode::kStdSort, false);
}
void ReplacementSelectionRuns(benchmark::State& state) {
  RunGen(state, RunGenMode::kPqSingleRowRuns, true);
}

BENCHMARK(SingleRowRuns)->Unit(benchmark::kMillisecond);
BENCHMARK(MiniRuns)->Unit(benchmark::kMillisecond);
BENCHMARK(StdSortRuns)->Unit(benchmark::kMillisecond);
BENCHMARK(ReplacementSelectionRuns)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
