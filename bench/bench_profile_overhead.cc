// Profiling-instrumentation overhead on the hot batched path.
//
// EXPLAIN ANALYZE wraps every operator in a ProfiledOperator that reads
// the tick counter around each Open/NextBatch/Close and bumps per-slice
// row/batch counts. The observability layer's budget is <= 2% slowdown on
// the batched scan -> filter -> limit pipeline (the same shape and data as
// bench_batch_pipeline's Batched case); this benchmark prices exactly
// that: the identical heap-built pipeline drained through NextBatch, bare
// versus with every operator wrapped. Compare the Bare and Profiled
// wall times in BENCH_PR6.json -- the delta is the instrumentation.
//
// Methodology as everywhere in bench/: single thread, warm inputs, paper-
// shaped data, the tree behind an opaque Operator* so the baseline pays
// real virtual dispatch.

#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/profile.h"
#include "exec/filter.h"
#include "exec/limit.h"
#include "exec/profiled_operator.h"
#include "exec/scan.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1 << 20;
constexpr uint64_t kDistinct = 16;

struct Fixture {
  Schema schema{2, 2};
  RowBuffer table;
  InMemoryRun run;

  Fixture()
      : table(bench::MakeTable(schema, kRows, kDistinct, /*seed=*/1,
                               /*sorted=*/true)),
        run(bench::RunFromSorted(schema, table)) {}
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// The key-column range predicate from bench_batch_pipeline (~50% pass in
// long runs over the sorted stream).
bool KeepRow(const uint64_t* row) { return row[0] % 2 == 0; }
void KeepRows(const RowBlock& block, uint8_t* keep) {
  for (uint32_t i = 0; i < block.size(); ++i) {
    keep[i] = block.row(i)[0] % 2 == 0;
  }
}

/// Heap-built operator tree behind an opaque root, PhysicalPlan-style.
struct Pipeline {
  std::vector<std::unique_ptr<Operator>> operators;
  Operator* root = nullptr;

  Operator* Own(std::unique_ptr<Operator> op) {
    operators.push_back(std::move(op));
    return operators.back().get();
  }
};

/// scan -> filter -> limit; with `stats` non-null every operator is
/// wrapped in a ProfiledOperator writing to its own slice, exactly as the
/// planner wires a profiled plan (stats[0..2], scan to limit).
Pipeline BuildPipeline(Fixture& f, OperatorStats* stats) {
  Pipeline p;
  auto meter = [&](Operator* op, int i) {
    if (stats == nullptr) return op;
    return p.Own(std::make_unique<ProfiledOperator>(op, &stats[i]));
  };
  Operator* scan = meter(p.Own(std::make_unique<RunScan>(&f.schema, &f.run)), 0);
  Operator* filter = meter(
      p.Own(std::make_unique<FilterOperator>(scan, KeepRow, KeepRows)), 1);
  p.root = meter(p.Own(std::make_unique<LimitOperator>(filter, kRows)), 2);
  return p;
}

void RunBatched(benchmark::State& state, bool profiled) {
  Fixture& f = GetFixture();
  OperatorStats stats[3];
  for (auto _ : state) {
    for (OperatorStats& s : stats) s.Reset();
    Pipeline pipeline = BuildPipeline(f, profiled ? stats : nullptr);
    Operator* root = pipeline.root;
    benchmark::DoNotOptimize(root);  // opaque: no TU-local devirtualization
    root->Open();
    RowBlock block(f.schema.total_columns(), RowBlock::kDefaultRows);
    uint64_t n = 0;
    uint64_t sum = 0;
    uint32_t produced;
    while ((produced = root->NextBatch(&block)) > 0) {
      for (uint32_t i = 0; i < produced; ++i) {
        sum += block.row(i)[2];
      }
      n += produced;
    }
    root->Close();
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(stats[0].rows_out);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void ScanFilterLimit_Batched_Bare(benchmark::State& state) {
  RunBatched(state, /*profiled=*/false);
}
void ScanFilterLimit_Batched_Profiled(benchmark::State& state) {
  RunBatched(state, /*profiled=*/true);
}

BENCHMARK(ScanFilterLimit_Batched_Bare)->Unit(benchmark::kMillisecond);
BENCHMARK(ScanFilterLimit_Batched_Profiled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
