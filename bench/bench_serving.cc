// Serving-layer throughput: queries/second through a live ovcd Server
// over real loopback sockets, at 1 / 8 / 64 concurrent clients, with the
// plan cache cold (capacity 0: every statement re-lexed, re-parsed,
// re-bound under the cache lock) versus warm (capacity 128: one bind,
// then hits). The table is deliberately small so the per-statement
// front-end cost -- the part the cache removes -- is visible next to
// execution; the gap between warm and cold at 8+ clients is the cache's
// concurrency payoff (the cold path serializes binds on the cache mutex,
// the warm hit path holds it only for a lookup).
//
//   BM_ServingQps/clients:N/warm:{0,1} -- items/sec is QPS.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "sql/catalog.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 2000;
// Enough syntax that lexing + parsing + binding is a real per-statement
// cost: a join, an aggregate, and an order.
const char kSql[] =
    "SELECT f.a, COUNT(*) AS n, SUM(f.b) AS s "
    "FROM t f INNER JOIN d ON f.a = d.a "
    "GROUP BY f.a ORDER BY f.a";
constexpr int kQueriesPerRound = 20;

sql::Catalog* SharedCatalog() {
  static sql::Catalog* catalog = [] {
    auto* c = new sql::Catalog();
    sql::Catalog::GeneratedSpec spec;
    spec.distinct_per_column = 50;
    spec.seed = 11;
    OVC_CHECK_OK(
        c->RegisterGenerated("t", {"a", "b"}, Schema(1, 1), kRows, spec));
    spec.seed = 12;
    OVC_CHECK_OK(
        c->RegisterGenerated("d", {"a", "p"}, Schema(1, 1), 50, spec));
    return c;
  }();
  return catalog;
}

void BM_ServingQps(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool warm = state.range(1) != 0;

  server::ServerOptions options;
  options.max_queries = 8;
  options.plan_cache_capacity = warm ? 128 : 0;
  server::Server server(SharedCatalog(), options);
  OVC_CHECK_OK(server.Start());

  // Persistent connections: the benchmark prices statement serving, not
  // TCP connection setup.
  std::vector<server::Client> pool(static_cast<size_t>(clients));
  for (server::Client& client : pool) {
    OVC_CHECK_OK(client.Connect("127.0.0.1", server.port()));
  }
  if (warm) {
    // One throwaway statement binds the plan into the cache so the timed
    // region is all hits.
    server::Client::Result result;
    OVC_CHECK_OK(pool[0].Query(kSql, &result));
    OVC_CHECK(result.ok);
  }

  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(pool.size());
    for (server::Client& client : pool) {
      threads.emplace_back([&client, &failed] {
        for (int i = 0; i < kQueriesPerRound; ++i) {
          server::Client::Result result;
          if (!client.Query(kSql, &result).ok() || !result.ok) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  OVC_CHECK(!failed.load());

  state.SetItemsProcessed(state.iterations() * clients * kQueriesPerRound);
  state.counters["plan_cache_hits"] =
      static_cast<double>(server.plan_cache()->hits());
  server.Stop();
}
BENCHMARK(BM_ServingQps)
    ->ArgsProduct({{1, 8, 64}, {0, 1}})
    ->ArgNames({"clients", "warm"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace ovc
