// Figures 5 and 6: "intersect distinct" query plans, hash-based vs
// sort-based.
//
//   select B from T1 intersect select B from T2
//
// Hash-based plan (3 blocking operators): HashAggregate(T1),
// HashAggregate(T2) for duplicate removal, then a hash join for the
// intersection. Sort-based plan (2 blocking operators): sort + in-sort
// duplicate removal on each input, then a merge join that exploits both the
// interesting ordering and the offset-value codes.
//
// The paper runs 100,000,000-row inputs against 10,000,000-row operator
// memory; this reproduction keeps the same 10:1 input:memory ratio at
// laptop scale (default 1,000,000 rows, 100,000-row memory), so both plans
// spill with the same structure: the hash plan spills most rows twice, the
// sort plan spills each input row once. Spill volumes are reported as
// counters next to wall-clock time.

#include <algorithm>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/dedup.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/in_sort_aggregate.h"
#include "exec/merge_join.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"

namespace ovc {
namespace {

constexpr uint32_t kKeyColumns = 2;

struct Fixture {
  explicit Fixture(uint64_t rows)
      : schema(kKeyColumns),
        t1(bench::MakeTable(schema, rows, /*distinct=*/2048, /*seed=*/61)),
        t2(bench::MakeTable(schema, rows, /*distinct=*/2048, /*seed=*/62)) {}

  Schema schema;
  RowBuffer t1, t2;
};

Fixture& GetFixture(uint64_t rows) {
  static std::map<uint64_t, std::unique_ptr<Fixture>>* cache =
      new std::map<uint64_t, std::unique_ptr<Fixture>>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    it = cache->emplace(rows, std::make_unique<Fixture>(rows)).first;
  }
  return *it->second;
}

void SortBasedPlan(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  const uint64_t memory_rows = rows / 10;
  Fixture& fixture = GetFixture(rows);
  QueryCounters counters;
  uint64_t result_rows = 0;
  for (auto _ : state) {
    TempFileManager temp;
    SortConfig config;
    config.memory_rows = memory_rows;
    BufferScan scan1(&fixture.schema, &fixture.t1);
    BufferScan scan2(&fixture.schema, &fixture.t2);
    SortOperator sort1(&scan1, &counters, &temp, config);
    SortOperator sort2(&scan2, &counters, &temp, config);
    DedupOperator dedup1(&sort1);
    DedupOperator dedup2(&sort2);
    MergeJoin intersect(&dedup1, &dedup2, JoinType::kLeftSemi, &counters);
    intersect.Open();
    RowRef ref;
    result_rows = 0;
    while (intersect.Next(&ref)) ++result_rows;
    intersect.Close();
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows);
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["rows_spilled_per_iter"] = static_cast<double>(
      counters.rows_spilled / std::max<uint64_t>(1, state.iterations()));
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

void InSortAggPlan(benchmark::State& state) {
  // The paper's actual sort-based plan: "both [blocking operators] are
  // in-sort aggregation operators for duplicate removal" -- duplicates
  // collapse during run generation, so spilled runs hold only distinct
  // keys.
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  const uint64_t memory_rows = rows / 10;
  Fixture& fixture = GetFixture(rows);
  QueryCounters counters;
  uint64_t result_rows = 0;
  for (auto _ : state) {
    TempFileManager temp;
    SortConfig config;
    config.memory_rows = memory_rows;
    BufferScan scan1(&fixture.schema, &fixture.t1);
    BufferScan scan2(&fixture.schema, &fixture.t2);
    InSortAggregate dedup1(&scan1, kKeyColumns, {}, &counters, &temp, config);
    InSortAggregate dedup2(&scan2, kKeyColumns, {}, &counters, &temp, config);
    MergeJoin intersect(&dedup1, &dedup2, JoinType::kLeftSemi, &counters);
    intersect.Open();
    RowRef ref;
    result_rows = 0;
    while (intersect.Next(&ref)) ++result_rows;
    intersect.Close();
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows);
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["rows_spilled_per_iter"] = static_cast<double>(
      counters.rows_spilled / std::max<uint64_t>(1, state.iterations()));
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

void HashBasedPlan(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  const uint64_t memory_rows = rows / 10;
  Fixture& fixture = GetFixture(rows);
  QueryCounters counters;
  uint64_t result_rows = 0;
  for (auto _ : state) {
    TempFileManager temp;
    BufferScan scan1(&fixture.schema, &fixture.t1);
    BufferScan scan2(&fixture.schema, &fixture.t2);
    HashAggregate dedup1(&scan1, kKeyColumns, {}, memory_rows, &counters,
                         &temp);
    HashAggregate dedup2(&scan2, kKeyColumns, {}, memory_rows, &counters,
                         &temp);
    GraceHashJoin intersect(&dedup1, &dedup2, kKeyColumns,
                            JoinTypeHash::kLeftSemi, memory_rows, &counters,
                            &temp);
    intersect.Open();
    RowRef ref;
    result_rows = 0;
    while (intersect.Next(&ref)) ++result_rows;
    intersect.Close();
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows);
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["rows_spilled_per_iter"] = static_cast<double>(
      counters.rows_spilled / std::max<uint64_t>(1, state.iterations()));
  state.counters["hash_per_iter"] = static_cast<double>(
      counters.hash_computations / std::max<uint64_t>(1, state.iterations()));
}

BENCHMARK(SortBasedPlan)
    ->Arg(100000)->Arg(300000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(InSortAggPlan)
    ->Arg(100000)->Arg(300000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(HashBasedPlan)
    ->Arg(100000)->Arg(300000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
