// Shared helpers for the paper-reproduction benchmarks.
//
// All benchmarks follow the paper's Section 6 methodology: single execution
// thread, warm cache (inputs fully materialized in memory before the timed
// region), synthetic data shaped like the paper's ("each key column is an
// 8-byte integer with only a few distinct values"), measured with Google's
// benchmark library.

#ifndef OVC_BENCH_BENCH_UTIL_H_
#define OVC_BENCH_BENCH_UTIL_H_

#include <cstdint>

#include "core/ovc.h"
#include "row/comparator.h"
#include "row/generator.h"
#include "row/row_buffer.h"
#include "sort/run.h"

namespace ovc::bench {

/// Random table in the paper's shape.
inline RowBuffer MakeTable(const Schema& schema, uint64_t rows,
                           uint64_t distinct, uint64_t seed,
                           bool sorted = false) {
  RowBuffer buffer(schema.total_columns());
  GeneratorConfig config;
  config.rows = rows;
  config.distinct_per_column = distinct;
  config.seed = seed;
  config.sorted = sorted;
  GenerateRows(schema, config, &buffer);
  return buffer;
}

/// Sorted, coded in-memory run derived from a sorted buffer (codes computed
/// the naive way once, outside any timed region).
inline InMemoryRun RunFromSorted(const Schema& schema,
                                 const RowBuffer& sorted) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  run.Reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(sorted.row(i))
                      : codec.MakeFromRow(
                            sorted.row(i),
                            cmp.FirstDifference(sorted.row(i - 1),
                                                sorted.row(i), 0));
    run.Append(sorted.row(i), code);
  }
  return run;
}

}  // namespace ovc::bench

#endif  // OVC_BENCH_BENCH_UTIL_H_
