// Batched execution vs row-at-a-time Volcano iteration (the PR2 headline):
//
//  * scan -> filter -> limit pipeline, drained through per-row virtual
//    Next() vs block-at-a-time NextBatch() (with the filter's predicate
//    evaluated per row or per block) -- same operators, same rows, only the
//    dispatch granularity differs. Two filter shapes: a range predicate on
//    the leading sort-key column (long runs over the sorted stream -- the
//    canonical ordered-stream filter, and the best case for span-wise
//    compaction) and a predicate on an uncorrelated payload column (50%
//    random keeps: branch-hostile worst case for every engine).
//  * tree-of-losers merge with inputs pulled through the MergeSource vtable
//    vs the concrete-source merger (OvcMergerT<InMemoryRunSource>) emitting
//    block-sized output, both materializing their output identically. The
//    duplicate-heavy shape exercises the Section 5 bypass, where the
//    per-row work is mostly the source refill itself and devirtualizing it
//    pays the most.
//
// The pipeline is built on the heap behind an opaque Operator* -- exactly
// how PhysicalPlan hands an operator tree to PlanExecutor -- so the
// row-at-a-time baseline pays the per-row virtual dispatch a real plan
// pays; building the operators as stack locals in this translation unit
// would let the compiler devirtualize the baseline and measure nothing.
//
// Methodology as everywhere in bench/: single thread, warm inputs, paper-
// shaped data.

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/filter.h"
#include "exec/limit.h"
#include "exec/scan.h"
#include "pq/loser_tree.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1 << 20;
constexpr uint64_t kDistinct = 16;

// ---------------------------------------------------------------------------
// Pipeline: scan -> filter (~50% pass) -> limit (no early cutoff; prices
// pure pass-through)
// ---------------------------------------------------------------------------

struct PipelineFixture {
  Schema schema{2, 2};
  RowBuffer table;
  InMemoryRun run;

  PipelineFixture()
      : table(bench::MakeTable(schema, kRows, kDistinct, /*seed=*/1,
                               /*sorted=*/true)),
        run(bench::RunFromSorted(schema, table)) {}
};

PipelineFixture& GetPipelineFixture() {
  static PipelineFixture* fixture = new PipelineFixture();
  return *fixture;
}

// Range-style predicate on the leading sort-key column: over the sorted
// stream, keeps/drops alternate in long runs (~50% pass overall).
bool KeepRowKey(const uint64_t* row) { return row[0] % 2 == 0; }
void KeepRowsKey(const RowBlock& block, uint8_t* keep) {
  for (uint32_t i = 0; i < block.size(); ++i) {
    keep[i] = block.row(i)[0] % 2 == 0;
  }
}

// Predicate on an uncorrelated payload column: ~50% pass, decided
// row-by-row at random -- branch-prediction worst case.
bool KeepRowPayload(const uint64_t* row) { return row[2] % 2 == 0; }
void KeepRowsPayload(const RowBlock& block, uint8_t* keep) {
  for (uint32_t i = 0; i < block.size(); ++i) {
    keep[i] = block.row(i)[2] % 2 == 0;
  }
}

/// Owns a heap-allocated operator tree and exposes only the root pointer,
/// PhysicalPlan-style.
struct Pipeline {
  std::vector<std::unique_ptr<Operator>> operators;
  Operator* root = nullptr;

  Operator* Own(std::unique_ptr<Operator> op) {
    operators.push_back(std::move(op));
    return operators.back().get();
  }
};

enum class FilterShape { kKey, kPayload };

Pipeline BuildPipeline(PipelineFixture& f, FilterShape shape,
                       bool block_predicate) {
  const bool key = shape == FilterShape::kKey;
  Pipeline p;
  Operator* scan = p.Own(std::make_unique<RunScan>(&f.schema, &f.run));
  Operator* filter = p.Own(std::make_unique<FilterOperator>(
      scan, key ? KeepRowKey : KeepRowPayload,
      block_predicate ? (key ? KeepRowsKey : KeepRowsPayload)
                      : BlockPredicate(nullptr)));
  p.root = p.Own(std::make_unique<LimitOperator>(filter, kRows));
  return p;
}

void RunRowAtATime(benchmark::State& state, FilterShape shape) {
  PipelineFixture& f = GetPipelineFixture();
  for (auto _ : state) {
    Pipeline pipeline = BuildPipeline(f, shape, /*block_predicate=*/false);
    Operator* root = pipeline.root;
    benchmark::DoNotOptimize(root);  // opaque: no TU-local devirtualization
    root->Open();
    RowRef ref;
    uint64_t n = 0;
    uint64_t sum = 0;
    while (root->Next(&ref)) {
      sum += ref.cols[2];
      ++n;
    }
    root->Close();
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void RunBatched(benchmark::State& state, FilterShape shape,
                bool block_predicate, uint32_t batch_rows) {
  PipelineFixture& f = GetPipelineFixture();
  for (auto _ : state) {
    Pipeline pipeline = BuildPipeline(f, shape, block_predicate);
    Operator* root = pipeline.root;
    benchmark::DoNotOptimize(root);
    root->Open();
    RowBlock block(f.schema.total_columns(), batch_rows);
    uint64_t n = 0;
    uint64_t sum = 0;
    uint32_t produced;
    while ((produced = root->NextBatch(&block)) > 0) {
      for (uint32_t i = 0; i < produced; ++i) {
        sum += block.row(i)[2];
      }
      n += produced;
    }
    root->Close();
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void ScanFilterLimit_KeyFilter_RowAtATime(benchmark::State& state) {
  RunRowAtATime(state, FilterShape::kKey);
}
void ScanFilterLimit_KeyFilter_BatchedRowPredicate(benchmark::State& state) {
  RunBatched(state, FilterShape::kKey, /*block_predicate=*/false,
             static_cast<uint32_t>(state.range(0)));
}
void ScanFilterLimit_KeyFilter_Batched(benchmark::State& state) {
  RunBatched(state, FilterShape::kKey, /*block_predicate=*/true,
             static_cast<uint32_t>(state.range(0)));
}
void ScanFilterLimit_PayloadFilter_RowAtATime(benchmark::State& state) {
  RunRowAtATime(state, FilterShape::kPayload);
}
void ScanFilterLimit_PayloadFilter_Batched(benchmark::State& state) {
  RunBatched(state, FilterShape::kPayload, /*block_predicate=*/true,
             static_cast<uint32_t>(state.range(0)));
}

// ---------------------------------------------------------------------------
// Merge: virtual MergeSource pulls vs the devirtualized concrete-source
// merger. Both materialize output into RowBlocks so the only difference is
// how the tournament refills (vtable vs inlined concrete Next).
// ---------------------------------------------------------------------------

struct MergeShape {
  uint32_t arity;
  uint64_t distinct;
};

// range(1) selects the shape: 0 = duplicate-heavy (4 distinct keys; the
// Section 5 bypass serves most rows, so the refill dominates), 1 = moderate
// (comparison-dominated).
constexpr MergeShape kMergeShapes[] = {{2, 2}, {8, 4}};

struct MergeFixture {
  Schema schema;
  std::vector<std::unique_ptr<InMemoryRun>> runs;

  MergeFixture(uint32_t fan_in, MergeShape shape) : schema(shape.arity) {
    for (uint32_t r = 0; r < fan_in; ++r) {
      RowBuffer t = bench::MakeTable(schema, kRows / fan_in, shape.distinct,
                                     /*seed=*/100 + r, /*sorted=*/true);
      runs.push_back(
          std::make_unique<InMemoryRun>(bench::RunFromSorted(schema, t)));
    }
  }
};

MergeFixture& GetMergeFixture(uint32_t fan_in, int shape_index) {
  static std::map<std::pair<uint32_t, int>, std::unique_ptr<MergeFixture>>*
      cache = new std::map<std::pair<uint32_t, int>,
                           std::unique_ptr<MergeFixture>>();
  auto key = std::make_pair(fan_in, shape_index);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache
             ->emplace(key, std::make_unique<MergeFixture>(
                                fan_in, kMergeShapes[shape_index]))
             .first;
  }
  return *it->second;
}

void Merge_VirtualSources(benchmark::State& state) {
  const uint32_t fan_in = static_cast<uint32_t>(state.range(0));
  MergeFixture& f = GetMergeFixture(fan_in,
                                    static_cast<int>(state.range(1)));
  OvcCodec codec(&f.schema);
  KeyComparator comparator(&f.schema, nullptr);
  for (auto _ : state) {
    std::vector<std::unique_ptr<InMemoryRunSource>> sources;
    std::vector<MergeSource*> raw;
    for (auto& run : f.runs) {
      sources.push_back(std::make_unique<InMemoryRunSource>(run.get()));
      raw.push_back(sources.back().get());
    }
    OvcMerger merger(&codec, &comparator, raw);
    RowBlock block(f.schema.total_columns());
    RowRef ref;
    uint64_t n = 0;
    while (merger.Next(&ref)) {
      if (block.full()) block.Clear();
      block.Append(ref.cols, ref.ovc);
      ++n;
    }
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(block.size());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void Merge_DevirtualizedBlocks(benchmark::State& state) {
  const uint32_t fan_in = static_cast<uint32_t>(state.range(0));
  MergeFixture& f = GetMergeFixture(fan_in,
                                    static_cast<int>(state.range(1)));
  OvcCodec codec(&f.schema);
  KeyComparator comparator(&f.schema, nullptr);
  for (auto _ : state) {
    std::vector<std::unique_ptr<InMemoryRunSource>> sources;
    std::vector<InMemoryRunSource*> raw;
    for (auto& run : f.runs) {
      sources.push_back(std::make_unique<InMemoryRunSource>(run.get()));
      raw.push_back(sources.back().get());
    }
    OvcMergerT<InMemoryRunSource> merger(&codec, &comparator, raw);
    RowBlock block(f.schema.total_columns());
    uint64_t n = 0;
    uint32_t produced;
    while ((produced = merger.NextBlock(&block)) > 0) {
      n += produced;
    }
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(block.size());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

BENCHMARK(ScanFilterLimit_KeyFilter_RowAtATime)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ScanFilterLimit_KeyFilter_BatchedRowPredicate)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ScanFilterLimit_KeyFilter_Batched)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ScanFilterLimit_PayloadFilter_RowAtATime)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ScanFilterLimit_PayloadFilter_Batched)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Merge_VirtualSources)
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Merge_DevirtualizedBlocks)
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
