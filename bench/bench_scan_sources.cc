// Section 4.11: ordered scans as sources of offset-value codes. B-tree
// scan (codes stored explicitly), LSM forest scan (merge of prefix-
// truncated runs), RLE column-store scan (codes from segment arithmetic),
// and run-file scan (codes from prefix truncation) -- against re-deriving
// codes naively from a plain sorted array.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/ovc_reference.h"
#include "exec/scan.h"
#include "sort/run_file.h"
#include "storage/btree.h"
#include "storage/column_store.h"
#include "storage/lsm.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 500000;
constexpr uint32_t kArity = 4;
constexpr uint64_t kDistinct = 8;

struct Fixture {
  Schema schema{kArity, 1};
  RowBuffer sorted{schema.total_columns()};
  InMemoryRun run{schema.total_columns()};
  std::unique_ptr<BTree> btree;
  std::unique_ptr<TempFileManager> temp;
  std::unique_ptr<LsmForest> lsm;
  std::unique_ptr<RleColumnStore> columns;
  std::string run_path;

  Fixture() {
    sorted = bench::MakeTable(schema, kRows, kDistinct, /*seed=*/66,
                              /*sorted=*/true);
    run = bench::RunFromSorted(schema, sorted);

    btree = std::make_unique<BTree>(&schema, nullptr, 128);
    for (size_t i = 0; i < sorted.size(); ++i) btree->Insert(sorted.row(i));

    temp = std::make_unique<TempFileManager>();
    LsmForest::Options options;
    options.memtable_rows = kRows / 8;
    lsm = std::make_unique<LsmForest>(&schema, nullptr, temp.get(), options);
    for (size_t i = 0; i < sorted.size(); ++i) lsm->Insert(sorted.row(i));
    lsm->Flush();

    columns = std::make_unique<RleColumnStore>(&schema);
    RunScan input(&schema, &run);
    columns->Build(&input);

    RunFileWriter writer(&schema, nullptr);
    run_path = temp->NewPath("bench-run");
    OVC_CHECK_OK(writer.Open(run_path));
    for (size_t i = 0; i < run.size(); ++i) {
      OVC_CHECK_OK(writer.Append(run.row(i), run.code(i)));
    }
    OVC_CHECK_OK(writer.Close());
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void DrainOperator(Operator* op) {
  op->Open();
  RowRef ref;
  Ovc sum = 0;
  uint64_t n = 0;
  while (op->Next(&ref)) {
    sum ^= ref.ovc;
    ++n;
  }
  op->Close();
  benchmark::DoNotOptimize(sum);
  benchmark::DoNotOptimize(n);
}

void BTreeScan(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto scan = fixture.btree->Scan();
    DrainOperator(scan.get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void LsmForestScan(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto scan = fixture.lsm->ScanAll();
    DrainOperator(scan.get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void RleColumnScan(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto scan = fixture.columns->CreateScan();
    DrainOperator(scan.get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void RunFileScan(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    RunFileReader reader(&fixture.schema);
    OVC_CHECK_OK(reader.Open(fixture.run_path));
    const uint64_t* row = nullptr;
    Ovc code = 0, sum = 0;
    while (reader.Next(&row, &code)) sum ^= code;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void NaiveDerivationBaseline(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  OvcCodec codec(&fixture.schema);
  for (auto _ : state) {
    Ovc sum = 0;
    for (size_t i = 1; i < fixture.sorted.size(); ++i) {
      sum ^= reference::AscendingOvc(codec, fixture.sorted.row(i - 1),
                                     fixture.sorted.row(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

BENCHMARK(BTreeScan)->Unit(benchmark::kMillisecond);
BENCHMARK(LsmForestScan)->Unit(benchmark::kMillisecond);
BENCHMARK(RleColumnScan)->Unit(benchmark::kMillisecond);
BENCHMARK(RunFileScan)->Unit(benchmark::kMillisecond);
BENCHMARK(NaiveDerivationBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
