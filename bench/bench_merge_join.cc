// Claim 1, merge join: "offset-value codes from the in-sort aggregation
// operators speed up row comparisons in the merge join." The engine's
// OVC merge join vs a hand-written merge join that compares keys column by
// column over the same inputs.

#include <algorithm>
#include <cstring>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/merge_join.h"
#include "exec/scan.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 500000;
constexpr uint32_t kArity = 8;
constexpr uint64_t kDistinct = 3;

struct Fixture {
  Schema schema{kArity, 1};
  RowBuffer left{schema.total_columns()};
  RowBuffer right{schema.total_columns()};
  InMemoryRun left_run{schema.total_columns()};
  InMemoryRun right_run{schema.total_columns()};

  Fixture() {
    left = bench::MakeTable(schema, kRows, kDistinct, /*seed=*/71,
                            /*sorted=*/true);
    right = bench::MakeTable(schema, kRows, kDistinct, /*seed=*/72,
                             /*sorted=*/true);
    left_run = bench::RunFromSorted(schema, left);
    right_run = bench::RunFromSorted(schema, right);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void OvcMergeJoin(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  QueryCounters counters;
  for (auto _ : state) {
    RunScan left(&fixture.schema, &fixture.left_run);
    RunScan right(&fixture.schema, &fixture.right_run);
    MergeJoin join(&left, &right, JoinType::kLeftSemi, &counters);
    join.Open();
    RowRef ref;
    uint64_t n = 0;
    while (join.Next(&ref)) ++n;
    join.Close();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 2 * kRows);
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

void PlainMergeJoin(benchmark::State& state) {
  // Full-comparison merge join (left semi) over the same sorted inputs,
  // materializing output rows like the operator does.
  Fixture& fixture = GetFixture();
  QueryCounters counters;
  KeyComparator cmp(&fixture.schema, &counters);
  std::vector<uint64_t> out_row(fixture.schema.total_columns());
  for (auto _ : state) {
    uint64_t n = 0;
    size_t li = 0, ri = 0;
    const size_t ln = fixture.left.size(), rn = fixture.right.size();
    while (li < ln && ri < rn) {
      const int c = cmp.Compare(fixture.left.row(li), fixture.right.row(ri));
      if (c < 0) {
        ++li;
      } else if (c > 0) {
        ++ri;
      } else {
        std::memcpy(out_row.data(), fixture.left.row(li),
                    out_row.size() * sizeof(uint64_t));
        benchmark::DoNotOptimize(out_row.data());
        ++n;  // emit left row
        ++li;
      }
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 2 * kRows);
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

BENCHMARK(OvcMergeJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(PlainMergeJoin)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
