// Table 1 operational form: deriving offset-value codes for a sorted
// stream. Prices the naive row-by-row, column-by-column derivation (the
// "only method known to-date" the paper's introduction refers to) for
// ascending and descending coding, against consuming precomputed codes from
// storage (prefix-truncated runs give codes for free).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/ovc_reference.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1000000;
constexpr uint32_t kArity = 4;
constexpr uint64_t kDistinct = 16;

const RowBuffer& SortedTable() {
  static const RowBuffer* table = [] {
    Schema schema(kArity);
    return new RowBuffer(
        bench::MakeTable(schema, kRows, kDistinct, /*seed=*/11,
                         /*sorted=*/true));
  }();
  return *table;
}

void NaiveAscendingDerivation(benchmark::State& state) {
  Schema schema(kArity);
  OvcCodec codec(&schema);
  const RowBuffer& table = SortedTable();
  for (auto _ : state) {
    Ovc sum = 0;
    for (size_t i = 1; i < table.size(); ++i) {
      sum ^= reference::AscendingOvc(codec, table.row(i - 1), table.row(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void NaiveDescendingDerivation(benchmark::State& state) {
  Schema schema(kArity);
  DescendingOvcCodec codec(&schema);
  const RowBuffer& table = SortedTable();
  for (auto _ : state) {
    Ovc sum = 0;
    for (size_t i = 1; i < table.size(); ++i) {
      sum ^= reference::DescendingOvc(codec, table.row(i - 1), table.row(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void PrecomputedCodesFromRun(benchmark::State& state) {
  // The alternative Section 4.12 recommends: ordered storage keeps the
  // codes; a scan only reads them.
  Schema schema(kArity);
  static const InMemoryRun* run =
      new InMemoryRun(bench::RunFromSorted(schema, SortedTable()));
  for (auto _ : state) {
    Ovc sum = 0;
    for (size_t i = 0; i < run->size(); ++i) {
      sum ^= run->code(i);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

BENCHMARK(NaiveAscendingDerivation)->Unit(benchmark::kMillisecond);
BENCHMARK(NaiveDescendingDerivation)->Unit(benchmark::kMillisecond);
BENCHMARK(PrecomputedCodesFromRun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
