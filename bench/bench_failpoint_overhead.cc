// Failpoint-check overhead on a hot per-row path.
//
// The fault-injection macro OVC_FAILPOINT(name) guards the error paths of
// temp-file writes and the hash operators' budget checks. Its cost
// contract (common/failpoint.h): in builds without failpoints it is the
// literal constant `false` -- zero instructions -- and in builds with
// them it is one registry lookup that must stay cheap enough to sit on a
// per-row budget check. This benchmark prices exactly that, in the style
// of bench_profile_overhead: a tight per-row loop over paper-shaped data,
// bare versus with an (unarmed) failpoint consulted every row. In a
// Release build without OVC_ENABLE_FAILPOINTS the two times must be
// indistinguishable -- that is the compiled-out-to-zero-cost check.
//
// Methodology as everywhere in bench/: single thread, warm inputs, the
// accumulator fed through DoNotOptimize so the check cannot be hoisted.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/failpoint.h"
#include "row/row_buffer.h"
#include "row/schema.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1 << 20;
constexpr uint64_t kDistinct = 1 << 10;

struct Fixture {
  Schema schema{1, 1};
  RowBuffer table;

  Fixture() : table(bench::MakeTable(schema, kRows, kDistinct, /*seed=*/1)) {}
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// The shape of HashAggregate's budget check: one branch per input row
// that an armed failpoint can force. `Bare` is the branch alone,
// `Checked` adds the (unarmed) failpoint consultation.

void PerRowBudgetCheck_Bare(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    uint64_t overflowed = 0;
    for (uint64_t i = 0; i < f.table.size(); ++i) {
      const uint64_t* row = f.table.row(i);
      if (row[0] >= kDistinct) ++overflowed;
      benchmark::DoNotOptimize(overflowed);
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void PerRowBudgetCheck_Failpoint(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    uint64_t overflowed = 0;
    for (uint64_t i = 0; i < f.table.size(); ++i) {
      const uint64_t* row = f.table.row(i);
      if (row[0] >= kDistinct || OVC_FAILPOINT("bench.budget_check")) {
        ++overflowed;
      }
      benchmark::DoNotOptimize(overflowed);
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

BENCHMARK(PerRowBudgetCheck_Bare)->Unit(benchmark::kMillisecond);
BENCHMARK(PerRowBudgetCheck_Failpoint)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
