// Claim 1: offset-value coding speeds up external merge sort. The same
// external sort (same run sizes, same fan-in, same spill format family)
// with OVC on vs off, and against the std::sort baseline, across row counts
// and key-column counts.

#include <algorithm>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sort/external_sort.h"

namespace ovc {
namespace {

struct Key {
  uint64_t rows;
  uint32_t arity;
  bool operator<(const Key& o) const {
    return rows != o.rows ? rows < o.rows : arity < o.arity;
  }
};

const RowBuffer& GetTable(uint64_t rows, uint32_t arity) {
  static std::map<Key, std::unique_ptr<RowBuffer>>* cache =
      new std::map<Key, std::unique_ptr<RowBuffer>>();
  const Key key{rows, arity};
  auto it = cache->find(key);
  if (it == cache->end()) {
    Schema schema(arity);
    it = cache
             ->emplace(key, std::make_unique<RowBuffer>(bench::MakeTable(
                                schema, rows, /*distinct=*/4, /*seed=*/rows)))
             .first;
  }
  return *it->second;
}

void RunSort(benchmark::State& state, bool use_ovc, RunGenMode mode) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  const uint32_t arity = static_cast<uint32_t>(state.range(1));
  Schema schema(arity);
  const RowBuffer& table = GetTable(rows, arity);
  QueryCounters counters;
  for (auto _ : state) {
    TempFileManager temp;
    SortConfig config;
    config.memory_rows = std::max<uint64_t>(2, rows / 10);
    config.use_ovc = use_ovc;
    config.run_gen = mode;
    ExternalSort sort(&schema, &counters, &temp, config);
    for (size_t i = 0; i < table.size(); ++i) sort.Add(table.row(i));
    OVC_CHECK_OK(sort.Finish());
    RowRef ref;
    uint64_t n = 0;
    while (sort.Next(&ref)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) /
      (static_cast<double>(state.iterations()) * rows);
}

void OvcSort(benchmark::State& state) {
  RunSort(state, /*use_ovc=*/true, RunGenMode::kPqSingleRowRuns);
}
void PlainTreeSort(benchmark::State& state) {
  RunSort(state, /*use_ovc=*/false, RunGenMode::kPqSingleRowRuns);
}
void StdSortBaseline(benchmark::State& state) {
  RunSort(state, /*use_ovc=*/false, RunGenMode::kStdSort);
}
void OvcMiniRunSort(benchmark::State& state) {
  RunSort(state, /*use_ovc=*/true, RunGenMode::kPqMiniRuns);
}

// Sweep rows x key columns ("many rows and many key columns").
#define SORT_ARGS                                            \
  ->Args({100000, 2})->Args({100000, 8})->Args({1000000, 2}) \
      ->Args({1000000, 8})->Unit(benchmark::kMillisecond)

BENCHMARK(OvcSort) SORT_ARGS;
BENCHMARK(PlainTreeSort) SORT_ARGS;
BENCHMARK(StdSortBaseline) SORT_ARGS;
BENCHMARK(OvcMiniRunSort) SORT_ARGS;

}  // namespace
}  // namespace ovc
