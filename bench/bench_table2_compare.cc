// Table 2 operational form: comparisons of keys coded relative to a shared
// base. Most comparisons are decided by the codes alone (cases 1 and 2);
// only equal codes touch column values (case 3). Compared against full
// row comparisons over the same pairs.

#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/ovc_compare.h"
#include "core/ovc_reference.h"

namespace ovc {
namespace {

constexpr uint64_t kPairs = 500000;
constexpr uint32_t kArity = 4;
constexpr uint64_t kDistinct = 8;

struct PairSet {
  Schema schema{kArity};
  RowBuffer rows{kArity};
  std::vector<Ovc> codes;       // row i relative to row i-1
  std::vector<Ovc> skip_codes;  // row i relative to row i-2 (the shared base)
};

const PairSet& Pairs() {
  static const PairSet* set = [] {
    auto* s = new PairSet();
    s->rows = bench::MakeTable(s->schema, kPairs + 2, kDistinct, /*seed=*/5,
                               /*sorted=*/true);
    OvcCodec codec(&s->schema);
    KeyComparator cmp(&s->schema, nullptr);
    s->codes.push_back(codec.MakeInitial(s->rows.row(0)));
    s->skip_codes.push_back(0);
    s->skip_codes.push_back(0);
    for (size_t i = 1; i < s->rows.size(); ++i) {
      s->codes.push_back(codec.MakeFromRow(
          s->rows.row(i),
          cmp.FirstDifference(s->rows.row(i - 1), s->rows.row(i), 0)));
      if (i >= 2) {
        s->skip_codes.push_back(reference::AscendingOvc(
            codec, s->rows.row(i - 2), s->rows.row(i)));
      }
    }
    return s;
  }();
  return *set;
}

void CodedComparisons(benchmark::State& state) {
  const PairSet& set = Pairs();
  Schema schema(kArity);
  OvcCodec codec(&schema);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  for (auto _ : state) {
    int64_t acc = 0;
    // Compare consecutive pairs (B, C) relative to their shared base A: the
    // exact situation of Table 2.
    for (size_t i = 2; i < set.rows.size(); ++i) {
      Ovc cb = set.codes[i - 1];   // B relative to A
      Ovc cc = set.skip_codes[i];  // C relative to A
      acc += CompareWithOvc(codec, cmp, set.rows.row(i - 1), &cb,
                            set.rows.row(i), &cc);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kPairs);
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

void FullComparisons(benchmark::State& state) {
  const PairSet& set = Pairs();
  Schema schema(kArity);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  for (auto _ : state) {
    int64_t acc = 0;
    for (size_t i = 2; i < set.rows.size(); ++i) {
      acc += cmp.Compare(set.rows.row(i - 1), set.rows.row(i));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kPairs);
  state.counters["column_cmp_per_iter"] = static_cast<double>(
      counters.column_comparisons / std::max<uint64_t>(1, state.iterations()));
}

BENCHMARK(CodedComparisons)->Unit(benchmark::kMillisecond);
BENCHMARK(FullComparisons)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
