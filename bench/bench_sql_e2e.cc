// SQL front-end end-to-end cost: Prepare (lex + parse + bind + plan)
// versus execution, on a join + group-by query -- the front end is a thin
// layer, so preparing should be microseconds against milliseconds of OVC
// execution.
//
//   BM_SqlPrepare     -- full Prepare of the join+group-by statement
//   BM_SqlExecute     -- re-running the prepared physical plan
//   BM_SqlPrepareAndRun -- both, i.e. a cold one-shot query
//   BM_SqlExecuteSimple -- a point-ish filter query, the front end's worst
//                          ratio (tiny execution next to a fixed parse)

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "sql/catalog.h"
#include "sql/session.h"

namespace ovc {
namespace {

constexpr uint64_t kLineitemRows = 200000;
constexpr uint64_t kOrdersRows = 50000;
constexpr uint64_t kDistinctKeys = 10000;

const char kJoinGroupSql[] =
    "SELECT o.orderkey, COUNT(*) AS n, SUM(l.qty) AS total "
    "FROM orders o INNER JOIN lineitem l ON o.orderkey = l.orderkey "
    "GROUP BY o.orderkey ORDER BY o.orderkey";

const char kFilterSql[] =
    "SELECT orderkey, qty FROM lineitem WHERE orderkey < 100 LIMIT 10";

/// One shared catalog: table generation stays outside every timed region.
sql::Catalog* SharedCatalog() {
  static sql::Catalog* catalog = [] {
    auto* c = new sql::Catalog();
    sql::Catalog::GeneratedSpec spec;
    spec.distinct_per_column = kDistinctKeys;
    spec.seed = 1;
    OVC_CHECK_OK(c->RegisterGenerated("lineitem", {"orderkey", "qty", "price"},
                                      Schema(1, 2), kLineitemRows, spec));
    spec.seed = 2;
    spec.sorted = true;
    OVC_CHECK_OK(c->RegisterGenerated("orders", {"orderkey", "custkey"},
                                      Schema(1, 1), kOrdersRows, spec));
    return c;
  }();
  return catalog;
}

void BM_SqlPrepare(benchmark::State& state) {
  sql::SqlSession session(SharedCatalog());
  for (auto _ : state) {
    auto prepared = session.Prepare(kJoinGroupSql);
    OVC_CHECK(prepared.ok());
    benchmark::DoNotOptimize(prepared.value()->physical->root());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlPrepare);

void BM_SqlExecute(benchmark::State& state) {
  sql::SqlSession session(SharedCatalog());
  auto prepared = session.Prepare(kJoinGroupSql);
  OVC_CHECK(prepared.ok());
  uint64_t rows = 0;
  for (auto _ : state) {
    sql::QueryResult result = session.Run(prepared.value().get());
    rows = result.result.row_count();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          (kLineitemRows + kOrdersRows));
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_SqlExecute);

void BM_SqlPrepareAndRun(benchmark::State& state) {
  sql::SqlSession session(SharedCatalog());
  for (auto _ : state) {
    auto result = session.Run(kJoinGroupSql);
    OVC_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result.row_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          (kLineitemRows + kOrdersRows));
}
BENCHMARK(BM_SqlPrepareAndRun);

void BM_SqlExecuteSimple(benchmark::State& state) {
  sql::SqlSession session(SharedCatalog());
  auto prepared = session.Prepare(kFilterSql);
  OVC_CHECK(prepared.ok());
  for (auto _ : state) {
    sql::QueryResult result = session.Run(prepared.value().get());
    benchmark::DoNotOptimize(result.result.row_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlExecuteSimple);

}  // namespace
}  // namespace ovc
