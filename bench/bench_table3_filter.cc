// Table 3 operational form: producing offset-value codes for a filter's
// output. The filter theorem derives each output code with integer max
// operations on input codes; the baseline recomputes each output row's code
// against its predecessor, column by column.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/accumulator.h"
#include "core/ovc_reference.h"
#include "exec/filter.h"
#include "exec/scan.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1000000;
constexpr uint32_t kArity = 4;
constexpr uint64_t kDistinct = 8;

struct Fixture {
  Schema schema{kArity, 1};
  RowBuffer table{schema.total_columns()};
  InMemoryRun run{schema.total_columns()};

  Fixture() {
    table = bench::MakeTable(schema, kRows, kDistinct, /*seed=*/3,
                             /*sorted=*/true);
    run = bench::RunFromSorted(schema, table);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// Keep ~1/selectivity of the rows.
bool Keep(const uint64_t* row, uint64_t selectivity) {
  return row[kArity] % selectivity == 0;
}

void FilterTheorem(benchmark::State& state) {
  const uint64_t selectivity = static_cast<uint64_t>(state.range(0));
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    RunScan scan(&fixture.schema, &fixture.run);
    FilterOperator filter(&scan, [selectivity](const uint64_t* row) {
      return Keep(row, selectivity);
    });
    filter.Open();
    RowRef ref;
    Ovc sum = 0;
    uint64_t rows = 0;
    while (filter.Next(&ref)) {
      sum ^= ref.ovc;
      ++rows;
    }
    filter.Close();
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void NaiveRecompute(benchmark::State& state) {
  const uint64_t selectivity = static_cast<uint64_t>(state.range(0));
  Fixture& fixture = GetFixture();
  Schema& schema = fixture.schema;
  OvcCodec codec(&schema);
  for (auto _ : state) {
    // Filter, then derive each survivor's code against the previous
    // survivor -- the expensive method.
    Ovc sum = 0;
    const uint64_t* prev = nullptr;
    for (size_t i = 0; i < fixture.table.size(); ++i) {
      const uint64_t* row = fixture.table.row(i);
      if (!Keep(row, selectivity)) continue;
      sum ^= prev == nullptr ? codec.MakeInitial(row)
                             : reference::AscendingOvc(codec, prev, row);
      prev = row;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

BENCHMARK(FilterTheorem)->Arg(2)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(NaiveRecompute)->Arg(2)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
