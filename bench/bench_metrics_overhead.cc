// Metrics + tracing overhead on the hot batched path.
//
// The process-wide observability layer (common/metrics.h, common/trace.h)
// rides the same ≤2% budget as profiling: PlanExecutor bumps two sharded
// counters per drained batch, and with tracing enabled the drain runs
// under an open span. This benchmark prices exactly that wiring on the
// batched scan -> filter -> limit pipeline from bench_profile_overhead:
// the Bare case drains the tree with tracing compiled in but disabled
// (the production default: one relaxed load per span site); the
// Instrumented case enables tracing, records the drain span, and bumps a
// sharded counter pair per batch plus a latency-histogram sample per run
// -- a strict superset of what PlanExecutor::Run adds per query. Compare
// the Bare
// and Instrumented wall times in the committed aggregate;
// tools/compare_bench.py enforces the 2% budget on that pair in CI.
//
// Methodology as everywhere in bench/: single thread, warm inputs, paper-
// shaped data, the tree behind an opaque Operator* so the baseline pays
// real virtual dispatch.

#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/trace.h"
#include "exec/filter.h"
#include "exec/limit.h"
#include "exec/scan.h"

namespace ovc {
namespace {

constexpr uint64_t kRows = 1 << 20;
constexpr uint64_t kDistinct = 16;

struct Fixture {
  Schema schema{2, 2};
  RowBuffer table;
  InMemoryRun run;

  Fixture()
      : table(bench::MakeTable(schema, kRows, kDistinct, /*seed=*/1,
                               /*sorted=*/true)),
        run(bench::RunFromSorted(schema, table)) {}
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

bool KeepRow(const uint64_t* row) { return row[0] % 2 == 0; }
void KeepRows(const RowBlock& block, uint8_t* keep) {
  for (uint32_t i = 0; i < block.size(); ++i) {
    keep[i] = block.row(i)[0] % 2 == 0;
  }
}

struct Pipeline {
  std::vector<std::unique_ptr<Operator>> operators;
  Operator* root = nullptr;

  Operator* Own(std::unique_ptr<Operator> op) {
    operators.push_back(std::move(op));
    return operators.back().get();
  }
};

Pipeline BuildPipeline(Fixture& f) {
  Pipeline p;
  Operator* scan = p.Own(std::make_unique<RunScan>(&f.schema, &f.run));
  Operator* filter =
      p.Own(std::make_unique<FilterOperator>(scan, KeepRow, KeepRows));
  p.root = p.Own(std::make_unique<LimitOperator>(filter, kRows));
  return p;
}

void RunBatched(benchmark::State& state, bool instrumented) {
  Fixture& f = GetFixture();
  if (instrumented) trace::Enable();
  for (auto _ : state) {
    Pipeline pipeline = BuildPipeline(f);
    Operator* root = pipeline.root;
    benchmark::DoNotOptimize(root);  // opaque: no TU-local devirtualization
    const uint64_t start_ticks = instrumented ? ProfileTicks() : 0;
    OVC_TRACE_SPAN("bench.drain");
    root->Open();
    RowBlock block(f.schema.total_columns(), RowBlock::kDefaultRows);
    uint64_t n = 0;
    uint64_t sum = 0;
    uint32_t produced;
    if (instrumented) {
      // The PlanExecutor::Run drain-loop wiring: one sharded-counter
      // increment pair per batch, resolved once outside the loop.
      metrics::Counter& batches =
          OVC_METRIC_COUNTER("bench.batches", "drained batches (overhead rig)");
      metrics::Counter& rows =
          OVC_METRIC_COUNTER("bench.rows", "drained rows (overhead rig)");
      while ((produced = root->NextBatch(&block)) > 0) {
        for (uint32_t i = 0; i < produced; ++i) {
          sum += block.row(i)[2];
        }
        n += produced;
        batches.Increment();
        rows.Add(produced);
      }
      OVC_METRIC_HISTOGRAM("bench.drain_us", "per-drain latency (overhead rig)")
          .Record(TicksToNs(ProfileTicks() - start_ticks) / 1000);
    } else {
      while ((produced = root->NextBatch(&block)) > 0) {
        for (uint32_t i = 0; i < produced; ++i) {
          sum += block.row(i)[2];
        }
        n += produced;
      }
    }
    root->Close();
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(sum);
  }
  if (instrumented) trace::Disable();
  state.SetItemsProcessed(state.iterations() * kRows);
}

void ScanFilterLimit_Metrics_Bare(benchmark::State& state) {
  RunBatched(state, /*instrumented=*/false);
}
void ScanFilterLimit_Metrics_Instrumented(benchmark::State& state) {
  RunBatched(state, /*instrumented=*/true);
}

BENCHMARK(ScanFilterLimit_Metrics_Bare)->Unit(benchmark::kMillisecond);
BENCHMARK(ScanFilterLimit_Metrics_Instrumented)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
