// Section 3's cost model: with tree-of-losers priority queues and
// offset-value coding, total column-value comparisons in a sort are bounded
// by N x K -- "importantly, there is no log(N) factor". This benchmark
// reports comparisons-per-row for in-memory sorts across N; the OVC series
// stays flat (<= K) while the plain tournament grows with log N.

#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "pq/loser_tree.h"
#include "pq/plain_loser_tree.h"

namespace ovc {
namespace {

constexpr uint32_t kArity = 8;
constexpr uint64_t kDistinct = 4;

void SortOnce(const Schema& schema, const RowBuffer& table, bool use_ovc,
              QueryCounters* counters) {
  OvcCodec codec(&schema);
  KeyComparator comparator(&schema, counters);
  std::vector<const uint64_t*> ptrs;
  ptrs.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) ptrs.push_back(table.row(i));
  RowRef ref;
  if (use_ovc) {
    PqSorter sorter(&codec, &comparator);
    sorter.Reset(ptrs.data(), static_cast<uint32_t>(ptrs.size()));
    while (sorter.Next(&ref)) {
    }
  } else {
    PlainPqSorter sorter(&codec, &comparator);
    sorter.Reset(ptrs.data(), static_cast<uint32_t>(ptrs.size()));
    while (sorter.Next(&ref)) {
    }
  }
}

void RunCount(benchmark::State& state, bool use_ovc) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  Schema schema(kArity);
  RowBuffer table = bench::MakeTable(schema, rows, kDistinct, /*seed=*/rows);
  QueryCounters counters;
  for (auto _ : state) {
    counters.Reset();
    SortOnce(schema, table, use_ovc, &counters);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["column_cmp_per_row"] =
      static_cast<double>(counters.column_comparisons) / rows;
  state.counters["nk_bound_per_row"] = static_cast<double>(kArity);
}

void OvcComparisons(benchmark::State& state) { RunCount(state, true); }
void PlainComparisons(benchmark::State& state) { RunCount(state, false); }

BENCHMARK(OvcComparisons)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(PlainComparisons)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ovc
