// ovclint CLI: lints a repo checkout and prints findings.
//
//   ovclint [root]     (root defaults to the current directory)
//
// Exit status: 0 clean, 1 findings, 2 usage error. CI runs this against
// the live tree; tests/lint_test.cc runs the same library against the
// fixtures under tests/lint_fixtures/.

#include <cstdio>

#include "tools/lint/ovclint_lib.h"

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [root]\n", argv[0]);
    return 2;
  }
  const std::string root = argc == 2 ? argv[1] : ".";
  const std::vector<ovc::lint::Finding> findings = ovc::lint::LintTree(root);
  for (const ovc::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", ovc::lint::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "ovclint: %zu finding(s) in %s\n", findings.size(),
                 root.c_str());
    return 1;
  }
  return 0;
}
