#include "tools/lint/ovclint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ovc::lint {

namespace fs = std::filesystem;

namespace {

/// The layer order, lowest first. A file in layer i may include layers
/// 0..i; including a higher layer is OVC-L001. The order is the
/// topological order of the live include graph (common/ovc_word.h keeps
/// row below core: row containers store code words, core's codec algebra
/// needs row schemas).
const char* const kLayers[] = {"common", "row",     "core", "pq",  "sort",
                               "exec",   "storage", "plan", "sql", "server"};

int LayerRank(const std::string& dir) {
  for (size_t i = 0; i < sizeof(kLayers) / sizeof(kLayers[0]); ++i) {
    if (dir == kLayers[i]) return static_cast<int>(i);
  }
  return -1;
}

/// 1-based line number of byte offset `pos` in `text`.
int LineOf(const std::string& text, size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<long>(pos), '\n'));
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// True when `text[pos..]` matches `token` with identifier boundaries on
/// both sides.
bool TokenAt(const std::string& text, size_t pos, const std::string& token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const size_t end = pos + token.size();
  if (end < text.size() && is_ident(text[end])) return false;
  return true;
}

/// Extracts the balanced-paren argument of a macro call starting at the
/// '(' at `open`. Returns the text between the parens (empty on a
/// malformed file).
std::string BalancedArg(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) return text.substr(open + 1, i - open - 1);
    }
  }
  return std::string();
}

std::string Lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// The expected include guard for `rel` ("src/exec/exchange.h" ->
/// OVC_EXEC_EXCHANGE_H_, "tools/lint/ovclint_lib.h" ->
/// OVC_TOOLS_LINT_OVCLINT_LIB_H_).
std::string ExpectedGuard(std::string rel) {
  if (StartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard = "OVC_";
  for (char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

struct SourceFile {
  std::string rel;      // forward-slash path relative to root
  std::string raw;      // file contents
  std::string code;     // comments stripped, strings intact
  std::set<std::string> suppressed;  // rule IDs disabled for this file
};

/// Failpoint names follow `component.event` (dotted lowercase); this is
/// what keeps the registry-table parse from matching other tables in
/// docs/ROBUSTNESS.md.
bool IsFailpointName(const std::string& s) {
  bool dot = false;
  if (s.empty()) return false;
  for (char c : s) {
    if (c == '.') {
      dot = true;
    } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return dot;
}

}  // namespace

std::string StripComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out += "  ";
          ++i;
        } else {
          if (c == '"') state = State::kString;
          if (c == '\'') state = State::kChar;
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        out += c;
        if (c == '\\' && next != '\0') {
          out += next;
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        out += c;
        if (c == '\\' && next != '\0') {
          out += next;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

std::vector<Finding> LintTree(const std::string& root) {
  std::vector<Finding> all;
  std::vector<SourceFile> files;

  // --- collect and preprocess files ---------------------------------------
  for (const char* sub : {"src", "tools", "tests"}) {
    const fs::path base = fs::path(root) / sub;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      SourceFile f;
      f.rel = std::move(rel);
      f.raw = buf.str();
      f.code = StripComments(f.raw);
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });

  // --- suppressions (parsed from raw text: they live in comments) ---------
  const std::string kMarker = "ovclint-disable-file";
  for (SourceFile& f : files) {
    std::istringstream lines(f.raw);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      const size_t at = line.find(kMarker);
      if (at == std::string::npos) continue;
      // Only markers inside a // comment count: a string literal that
      // merely mentions the marker (this file's own scanner, say) is
      // neither a suppression nor malformed.
      const size_t slashes = line.find("//");
      if (slashes == std::string::npos || slashes > at) continue;
      std::string rest = line.substr(at + kMarker.size());
      const size_t dash = rest.find("--");
      std::set<std::string> rules;
      bool well_formed = dash != std::string::npos;
      if (well_formed) {
        // Reason must be non-empty after "--".
        std::string reason = rest.substr(dash + 2);
        well_formed = reason.find_first_not_of(" \t\r") != std::string::npos;
        std::istringstream rule_stream(rest.substr(0, dash));
        std::string tok;
        while (rule_stream >> tok) {
          while (!tok.empty() && tok.back() == ',') tok.pop_back();
          if (StartsWith(tok, "OVC-L") && tok.size() == 8) {
            rules.insert(tok);
          } else {
            well_formed = false;
          }
        }
        if (rules.empty()) well_formed = false;
      }
      if (!well_formed) {
        all.push_back({"OVC-L000", f.rel, lineno,
                       "malformed suppression; use "
                       "\"ovclint-disable-file OVC-LNNN -- reason\""});
        continue;
      }
      f.suppressed.insert(rules.begin(), rules.end());
    }
  }

  auto report = [&all](const SourceFile& f, const char* rule, int line,
                       std::string message) {
    if (f.suppressed.count(rule)) return;
    all.push_back({rule, f.rel, line, std::move(message)});
  };

  // --- OVC-L001: layering -------------------------------------------------
  for (const SourceFile& f : files) {
    if (!StartsWith(f.rel, "src/")) continue;
    const size_t slash = f.rel.find('/', 4);
    if (slash == std::string::npos) continue;
    const std::string layer = f.rel.substr(4, slash - 4);
    const int rank = LayerRank(layer);
    if (rank < 0) continue;
    size_t pos = 0;
    while ((pos = f.code.find("#include", pos)) != std::string::npos) {
      const size_t q1 = f.code.find_first_of("\"<\n", pos + 8);
      if (q1 == std::string::npos || f.code[q1] != '"') {
        pos += 8;
        continue;
      }
      const size_t q2 = f.code.find('"', q1 + 1);
      if (q2 == std::string::npos) break;
      const std::string inc = f.code.substr(q1 + 1, q2 - q1 - 1);
      const size_t inc_slash = inc.find('/');
      if (inc_slash != std::string::npos) {
        const std::string inc_dir = inc.substr(0, inc_slash);
        const int inc_rank = LayerRank(inc_dir);
        if (inc_rank > rank) {
          report(f, "OVC-L001", LineOf(f.code, pos),
                 "layering: src/" + layer + " (layer " + std::to_string(rank) +
                     ") must not include \"" + inc + "\" (layer " +
                     std::to_string(inc_rank) + "); the order is common -> " +
                     "row -> core -> pq -> sort -> exec -> storage -> plan " +
                     "-> sql");
        } else if (inc_rank < 0 &&
                   (inc_dir == "tools" || inc_dir == "tests" ||
                    inc_dir == "bench" || inc_dir == "examples")) {
          report(f, "OVC-L001", LineOf(f.code, pos),
                 "layering: src/ must not include \"" + inc + "\"");
        }
      }
      pos = q2 + 1;
    }
  }

  // --- OVC-L002 / OVC-L003: the degrade contract in exec + sort -----------
  for (const SourceFile& f : files) {
    const bool degrade_scope =
        StartsWith(f.rel, "src/exec/") || StartsWith(f.rel, "src/sort/");
    if (!degrade_scope) continue;
    for (size_t pos = 0; (pos = f.code.find("OVC_CHECK", pos)) != std::string::npos;
         ++pos) {
      if (TokenAt(f.code, pos, "OVC_CHECK_OK")) {
        report(f, "OVC-L002", LineOf(f.code, pos),
               "OVC_CHECK_OK aborts on a Status; recoverable errors in "
               "src/exec/ + src/sort/ must degrade through the Status / "
               "first-error channel (docs/ROBUSTNESS.md)");
      } else if (TokenAt(f.code, pos, "OVC_CHECK")) {
        const size_t open = f.code.find('(', pos);
        if (open == std::string::npos) continue;
        const std::string arg = Lowered(BalancedArg(f.code, open));
        if (arg.find(".ok()") != std::string::npos ||
            arg.find("status") != std::string::npos) {
          report(f, "OVC-L003", LineOf(f.code, pos),
                 "OVC_CHECK over a Status-valued expression; propagate or "
                 "record the error instead of aborting (degrade contract, "
                 "docs/ROBUSTNESS.md)");
        }
      }
    }
  }

  // --- OVC-L004 / OVC-L005: failpoint registry sync ------------------------
  {
    // Names used in code, with one representative site each.
    std::map<std::string, std::pair<const SourceFile*, int>> used;
    for (const SourceFile& f : files) {
      if (!StartsWith(f.rel, "src/")) continue;
      const std::string needle = "OVC_FAILPOINT(\"";
      for (size_t pos = 0; (pos = f.code.find(needle, pos)) != std::string::npos;
           pos += needle.size()) {
        const size_t start = pos + needle.size();
        const size_t end = f.code.find('"', start);
        if (end == std::string::npos) break;
        const std::string name = f.code.substr(start, end - start);
        if (!used.count(name)) used[name] = {&f, LineOf(f.code, pos)};
      }
    }
    // Names documented in the registry table.
    const fs::path doc_path = fs::path(root) / "docs" / "ROBUSTNESS.md";
    std::map<std::string, int> documented;
    std::ifstream doc(doc_path);
    if (doc) {
      std::string line;
      int lineno = 0;
      while (std::getline(doc, line)) {
        ++lineno;
        // Table rows whose FIRST cell is a backticked dotted name:
        // | `tempfile.open` | ... |. Later cells are ignored so knob
        // tables mentioning `x.y` values elsewhere never false-match.
        size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '|') continue;
        const size_t cell_end = line.find('|', p + 1);
        if (cell_end == std::string::npos) continue;
        p = line.find('`', p);
        if (p == std::string::npos || p > cell_end) continue;
        const size_t q = line.find('`', p + 1);
        if (q == std::string::npos) continue;
        const std::string name = line.substr(p + 1, q - p - 1);
        if (IsFailpointName(name) && !documented.count(name)) {
          documented[name] = lineno;
        }
      }
      for (const auto& [name, site] : used) {
        if (!documented.count(name)) {
          if (site.first->suppressed.count("OVC-L004")) continue;
          all.push_back({"OVC-L004", site.first->rel, site.second,
                         "failpoint \"" + name +
                             "\" is not in the docs/ROBUSTNESS.md registry "
                             "table"});
        }
      }
      for (const auto& [name, lineno] : documented) {
        if (!used.count(name)) {
          all.push_back({"OVC-L005", "docs/ROBUSTNESS.md", lineno,
                         "registry entry \"" + name +
                             "\" has no OVC_FAILPOINT site in src/"});
        }
      }
    } else if (!used.empty()) {
      all.push_back({"OVC-L004", "docs/ROBUSTNESS.md", 0,
                     "docs/ROBUSTNESS.md missing but " +
                         std::to_string(used.size()) +
                         " failpoint name(s) are used in src/"});
    }
  }

  // --- OVC-L008 / OVC-L009: metric + span registry sync --------------------
  {
    // Names used in src/: the first string literal inside each metric /
    // span macro argument list. Macro *definitions* carry no literal and
    // are skipped naturally.
    const char* const kObsMacros[] = {"OVC_METRIC_COUNTER", "OVC_METRIC_GAUGE",
                                      "OVC_METRIC_HISTOGRAM", "OVC_TRACE_SPAN",
                                      "OVC_TRACE_SPAN_VAR"};
    std::map<std::string, std::pair<const SourceFile*, int>> used;
    for (const SourceFile& f : files) {
      if (!StartsWith(f.rel, "src/")) continue;
      for (const char* macro : kObsMacros) {
        const std::string needle(macro);
        for (size_t pos = 0;
             (pos = f.code.find(needle, pos)) != std::string::npos;
             pos += needle.size()) {
          if (!TokenAt(f.code, pos, needle)) continue;
          const size_t open = f.code.find_first_not_of(" \t\n", pos + needle.size());
          if (open == std::string::npos || f.code[open] != '(') continue;
          const std::string arg = BalancedArg(f.code, open);
          const size_t q1 = arg.find('"');
          if (q1 == std::string::npos) continue;  // the #define itself
          const size_t q2 = arg.find('"', q1 + 1);
          if (q2 == std::string::npos) continue;
          const std::string name = arg.substr(q1 + 1, q2 - q1 - 1);
          if (!used.count(name)) used[name] = {&f, LineOf(f.code, pos)};
        }
      }
    }
    // Names documented in the docs/OBSERVABILITY.md registry tables: rows
    // whose FIRST cell is a backticked dotted name and whose SECOND cell
    // names the kind (counter/gauge/histogram/span) -- other tables in the
    // file (EXPLAIN field glossaries etc.) never carry a kind cell.
    const fs::path doc_path = fs::path(root) / "docs" / "OBSERVABILITY.md";
    std::map<std::string, int> documented;
    std::ifstream doc(doc_path);
    if (doc) {
      std::string line;
      int lineno = 0;
      while (std::getline(doc, line)) {
        ++lineno;
        size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '|') continue;
        const size_t cell_end = line.find('|', p + 1);
        if (cell_end == std::string::npos) continue;
        const size_t cell2_end = line.find('|', cell_end + 1);
        if (cell2_end == std::string::npos) continue;
        p = line.find('`', p);
        if (p == std::string::npos || p > cell_end) continue;
        const size_t q = line.find('`', p + 1);
        if (q == std::string::npos || q > cell_end) continue;
        const std::string name = line.substr(p + 1, q - p - 1);
        const std::string kind =
            Lowered(line.substr(cell_end + 1, cell2_end - cell_end - 1));
        const bool kind_cell = kind.find("counter") != std::string::npos ||
                               kind.find("gauge") != std::string::npos ||
                               kind.find("histogram") != std::string::npos ||
                               kind.find("span") != std::string::npos;
        if (kind_cell && IsFailpointName(name) && !documented.count(name)) {
          documented[name] = lineno;
        }
      }
      for (const auto& [name, site] : used) {
        if (!documented.count(name)) {
          if (site.first->suppressed.count("OVC-L008")) continue;
          all.push_back({"OVC-L008", site.first->rel, site.second,
                         "metric/span \"" + name +
                             "\" is not in the docs/OBSERVABILITY.md "
                             "registry tables"});
        }
      }
      for (const auto& [name, lineno] : documented) {
        if (!used.count(name)) {
          all.push_back({"OVC-L009", "docs/OBSERVABILITY.md", lineno,
                         "registry entry \"" + name +
                             "\" has no OVC_METRIC_* / OVC_TRACE_SPAN site "
                             "in src/"});
        }
      }
    } else if (!used.empty()) {
      all.push_back({"OVC-L008", "docs/OBSERVABILITY.md", 0,
                     "docs/OBSERVABILITY.md missing but " +
                         std::to_string(used.size()) +
                         " metric/span name(s) are used in src/"});
    }
  }

  // --- OVC-L006: include guards -------------------------------------------
  for (const SourceFile& f : files) {
    if (f.rel.size() < 2 || f.rel.substr(f.rel.size() - 2) != ".h") continue;
    const std::string expected = ExpectedGuard(f.rel);
    size_t pos = f.code.find("#ifndef");
    if (pos == std::string::npos) {
      report(f, "OVC-L006", 1, "missing include guard; expected #ifndef " +
                                   expected);
      continue;
    }
    std::istringstream first(f.code.substr(pos));
    std::string directive, macro;
    first >> directive >> macro;
    if (macro != expected) {
      report(f, "OVC-L006", LineOf(f.code, pos),
             "include guard \"" + macro + "\" should be \"" + expected +
                 "\" (OVC_<PATH>_H_, src/ prefix dropped)");
      continue;
    }
    const size_t def = f.code.find("#define", pos);
    std::string def_macro;
    if (def != std::string::npos) {
      std::istringstream ds(f.code.substr(def));
      ds >> directive >> def_macro;
    }
    if (def_macro != expected) {
      report(f, "OVC-L006", LineOf(f.code, pos),
             "include guard #define does not match #ifndef " + expected);
    }
  }

  // --- OVC-L007: bare std locking primitives in src/ ----------------------
  for (const SourceFile& f : files) {
    if (!StartsWith(f.rel, "src/")) continue;
    if (f.rel == "src/common/mutex.h") continue;  // the one annotated wrapper
    for (const char* primitive :
         {"std::mutex", "std::condition_variable", "std::lock_guard",
          "std::unique_lock", "std::scoped_lock", "std::shared_mutex"}) {
      const size_t pos = f.code.find(primitive);
      if (pos != std::string::npos) {
        report(f, "OVC-L007", LineOf(f.code, pos),
               std::string(primitive) +
                   " is invisible to -Wthread-safety; use the annotated "
                   "Mutex/MutexLock/CondVar from common/mutex.h");
      }
    }
  }

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

}  // namespace ovc::lint
