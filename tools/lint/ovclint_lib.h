// ovclint: repo-specific invariant checks a compiler cannot express.
//
// A self-contained lexical checker (no libclang) over src/, tools/, and
// tests/. It strips comments with a small tokenizer, then enforces the
// contracts that previous PRs established by convention -- and that each
// cost at least one real bug before being written down:
//
//   OVC-L001  layer acyclicity from the include graph
//             (common -> row -> core -> pq -> sort -> exec -> storage ->
//              plan -> sql; lower layers must not include upper ones, and
//              src/ must not include tools/, tests/, or bench/)
//   OVC-L002  no OVC_CHECK_OK in src/exec/ + src/sort/ -- recoverable
//             errors on the degrade path flow through Status, never abort
//             (docs/ROBUSTNESS.md, PR 7)
//   OVC-L003  no OVC_CHECK over a Status-valued expression in src/exec/ +
//             src/sort/ (lexical heuristic: the argument mentions `.ok()`
//             or `status`) -- same contract as OVC-L002
//   OVC-L004  every OVC_FAILPOINT("name") in code appears in the registry
//             table of docs/ROBUSTNESS.md
//   OVC-L005  ...and every registry entry still exists in code
//   OVC-L006  include guards follow OVC_<PATH>_H_ (src/ prefix dropped)
//   OVC-L007  no bare std::mutex / std::lock_guard / std::condition_variable
//             in src/ outside common/mutex.h -- shared state must use the
//             annotated wrappers so -Wthread-safety can check locking
//   OVC-L008  every metric (OVC_METRIC_COUNTER/GAUGE/HISTOGRAM) and span
//             (OVC_TRACE_SPAN[_VAR]) name in src/ appears in the registry
//             tables of docs/OBSERVABILITY.md
//   OVC-L009  ...and every documented metric/span name still exists in code
//
// Suppression is file-level, must live in a // comment, and must carry
// a reason:
//   // ovclint-disable-file OVC-L003 -- <why this file is exempt>
// A malformed suppression (missing rule ID or reason) is itself reported
// as OVC-L000. Rule catalog and conventions: docs/STATIC_ANALYSIS.md.

#ifndef OVC_TOOLS_LINT_OVCLINT_LIB_H_
#define OVC_TOOLS_LINT_OVCLINT_LIB_H_

#include <string>
#include <vector>

namespace ovc::lint {

/// One rule violation. `file` is relative to the linted root; `line` is
/// 1-based (0 for whole-file findings).
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Runs every rule over a repo checkout at `root` (expects src/, tools/,
/// tests/, and docs/ROBUSTNESS.md below it; missing directories are
/// skipped). Paths containing "lint_fixtures" are excluded so the
/// checker's own test fixtures never fail the live tree. Findings come
/// back sorted by (file, line, rule).
std::vector<Finding> LintTree(const std::string& root);

/// Replaces // and /* */ comment bodies with spaces (newlines preserved,
/// string/char literals kept intact). Exposed for the fixture self-tests.
std::string StripComments(const std::string& text);

/// Formats a finding as "file:line: [RULE] message".
std::string FormatFinding(const Finding& f);

}  // namespace ovc::lint

#endif  // OVC_TOOLS_LINT_OVCLINT_LIB_H_
