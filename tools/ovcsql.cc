// ovcsql: interactive (and scriptable) SQL shell over the OVC engine.
//
//   ./build/ovcsql [--parallelism=N] [--prefer-sort] [--sort-memory-rows=N]
//                  [--hash-memory-rows=N] [--fallback=sort-merge|partition]
//                  [--rule-based] [--profile=FILE] [--trace=FILE]
//                  [--metrics[=FILE]]
//
// --trace=FILE records every statement as a Chrome trace_event span tree
// (chrome://tracing / Perfetto) including exchange worker threads;
// --metrics prints the process-wide metrics snapshot (docs/OBSERVABILITY.md
// registry) at exit, --metrics=FILE writes it as JSON, and the .metrics
// meta command shows it mid-session.
//
// Reads statements from stdin, terminated by ';'. Lines starting with '.'
// are meta commands (run `.help`). EXPLAIN prints the physical plan the
// cost-based, order-property-aware planner chose -- elided sorts,
// merge-vs-hash joins, in-stream/in-sort aggregation, per-node
// {rows=.. cost=..} estimates, and (with --parallelism) the
// exchange-parallel shapes. EXPLAIN ANALYZE executes the statement with
// per-operator profiling and renders each line with actual rows, wall
// time, and comparison/spill counters (docs/OBSERVABILITY.md).
// --profile=FILE appends one JSON query profile per executed profiled
// statement to FILE. --rule-based pins the pre-cost-model policy
// planner; --hash-memory-rows shrinks the hash budget to watch the
// cost-based planner flip join and aggregation strategies, and
// --sort-memory-rows bounds the sort workspace the same way (spilled
// runs beyond it; --memory-rows is the legacy spelling). --fallback
// picks what an overflowing hash operator does mid-query: sort-merge
// (default; docs/ROBUSTNESS.md) or classic grace partitioning. A CI smoke
// test pipes tools/smoke.sql through this binary and greps the plans, and
// tools/check_docs.sh replays the EXPLAIN snippets embedded in docs/
// (see .github/workflows/ci.yml).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "sql/catalog.h"
#include "sql/gen_spec.h"
#include "sql/parser.h"
#include "sql/session.h"

using namespace ovc;

namespace {

void PrintHelp() {
  std::printf(
      "meta commands:\n"
      "  .help                      this text\n"
      "  .tables                    list registered tables\n"
      "  .gen <name>(<col,...>) rows=N [keys=K] [distinct=D] [seed=S]\n"
      "       [base=B] [sorted]     generate a synthetic table; 'sorted'\n"
      "                             registers it pre-sorted with codes\n"
      "  .counters                  session comparison/spill counters\n"
      "  .metrics                   process-wide metrics snapshot\n"
      "  .quit                      exit\n"
      "statements end with ';'. EXPLAIN SELECT ... prints the physical\n"
      "plan; EXPLAIN ANALYZE SELECT ... executes it and annotates every\n"
      "plan line with actual rows, time, and counters. Supported: SELECT\n"
      "[DISTINCT] cols|aggs FROM t [INNER JOIN u ON a=b] [WHERE ...]\n"
      "[GROUP BY ...] [UNION|INTERSECT|EXCEPT [ALL] ...] [ORDER BY ...\n"
      "[DESC]] [LIMIT n]\n");
}

/// .gen orders(orderkey,custkey) rows=1000 keys=1 distinct=100 sorted
/// Spec parsing + registration live in sql/gen_spec.h (shared with ovcd's
/// --gen flag); this wrapper adds the shell's confirmation line.
bool RunGen(sql::Catalog* catalog, const std::string& args) {
  Status status = sql::RegisterGeneratedFromSpec(catalog, args);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return false;
  }
  std::string name = args.substr(0, args.find('('));
  while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
    name.pop_back();
  }
  while (!name.empty() && (name.front() == ' ' || name.front() == '\t')) {
    name.erase(name.begin());
  }
  const sql::CatalogTable* table = catalog->Find(name);
  const uint32_t key_arity = table->schema().key_arity();
  std::printf("table %s: %llu rows, %u key + %u payload columns%s\n",
              name.c_str(),
              static_cast<unsigned long long>(table->source.stats.row_count),
              key_arity,
              static_cast<uint32_t>(table->columns.size()) - key_arity,
              table->source.order.sorted_prefix > 0
                  ? ", pre-sorted with codes"
                  : "");
  return true;
}

void PrintTables(const sql::Catalog& catalog) {
  for (const std::string& name : catalog.TableNames()) {
    const sql::CatalogTable* table = catalog.Find(name);
    std::string cols;
    for (size_t i = 0; i < table->columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += table->columns[i];
    }
    std::printf("%s(%s) [%s, %s]\n", name.c_str(), cols.c_str(),
                table->schema().ToString().c_str(),
                table->source.order.ToString().c_str());
  }
}

void PrintCounters(const QueryCounters& counters) {
  // Every QueryCounters field, so .counters, the JSON profile, and the
  // query.* metrics report the same set field-for-field.
  std::printf("column comparisons: %llu\ncode comparisons:   %llu\n"
              "row comparisons:    %llu\nhash computations:  %llu\n"
              "rows spilled:       %llu\nbytes spilled:      %llu\n"
              "merge bypass rows:  %llu\nhash join fallbacks: %llu\n"
              "hash agg fallbacks: %llu\nio retries:         %llu\n",
              static_cast<unsigned long long>(counters.column_comparisons),
              static_cast<unsigned long long>(counters.code_comparisons),
              static_cast<unsigned long long>(counters.row_comparisons),
              static_cast<unsigned long long>(counters.hash_computations),
              static_cast<unsigned long long>(counters.rows_spilled),
              static_cast<unsigned long long>(counters.bytes_spilled),
              static_cast<unsigned long long>(counters.merge_bypass_rows),
              static_cast<unsigned long long>(counters.hash_join_fallbacks),
              static_cast<unsigned long long>(counters.hash_agg_fallbacks),
              static_cast<unsigned long long>(counters.io_retries));
}

bool RunStatement(sql::SqlSession* session, sql::Catalog* catalog,
                  const std::string& text, std::FILE* profile_out) {
  sql::SqlResult<sql::QueryResult> result = session->Run(text);
  if (!result.ok()) {
    std::printf("%s\n", result.error().Render(text).c_str());
    return false;
  }
  const sql::QueryResult& q = result.value();
  if (!q.profile_json.empty()) {
    if (profile_out != nullptr) {
      std::fprintf(profile_out, "%s\n", q.profile_json.c_str());
      std::fflush(profile_out);
    }
    // Push the run's estimate-vs-actual scan cardinalities into the
    // catalog's TableStats so later sessions can consult them.
    session->ApplyFeedbackTo(catalog);
  }
  if (q.is_explain) {
    std::printf("%s", q.explain_text.c_str());
    return true;
  }
  for (size_t i = 0; i < q.columns.size(); ++i) {
    std::printf(i == 0 ? "%s" : "\t%s", q.columns[i].c_str());
  }
  std::printf("\n");
  const RowBuffer& rows = q.result.rows;
  for (size_t r = 0; r < rows.size(); ++r) {
    const uint64_t* row = rows.row(r);
    for (uint32_t c = 0; c < rows.width(); ++c) {
      std::printf(c == 0 ? "%llu" : "\t%llu",
                  static_cast<unsigned long long>(row[c]));
    }
    std::printf("\n");
  }
  std::printf("(%llu rows)\n",
              static_cast<unsigned long long>(q.result.row_count()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sql::SqlSession::Options options;
  std::string profile_path;
  std::string trace_path;
  std::string metrics_path;
  bool metrics_text = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--parallelism=", 14) == 0) {
      options.planner.parallelism =
          static_cast<uint32_t>(std::strtoul(arg + 14, nullptr, 10));
    } else if (std::strcmp(arg, "--prefer-sort") == 0) {
      options.planner.prefer_sort_based = true;
    } else if (std::strncmp(arg, "--sort-memory-rows=", 19) == 0) {
      options.planner.sort_config.memory_rows =
          std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strncmp(arg, "--memory-rows=", 14) == 0) {
      // Legacy spelling of --sort-memory-rows.
      options.planner.sort_config.memory_rows =
          std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--hash-memory-rows=", 19) == 0) {
      options.planner.hash_memory_rows =
          std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strcmp(arg, "--fallback=sort-merge") == 0) {
      options.planner.fallback = ovc::FallbackPolicy::kSortMerge;
    } else if (std::strcmp(arg, "--fallback=partition") == 0) {
      options.planner.fallback = ovc::FallbackPolicy::kPartition;
    } else if (std::strcmp(arg, "--rule-based") == 0) {
      options.planner.cost_policy = plan::CostPolicy::kRuleBased;
    } else if (std::strncmp(arg, "--profile=", 10) == 0) {
      profile_path = arg + 10;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_text = true;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      metrics_path = arg + 10;
    } else {
      std::fprintf(stderr,
                   "usage: ovcsql [--parallelism=N] [--prefer-sort] "
                   "[--sort-memory-rows=N] [--hash-memory-rows=N] "
                   "[--fallback=sort-merge|partition] "
                   "[--rule-based] [--profile=FILE] [--trace=FILE] "
                   "[--metrics[=FILE]]\n");
      return 2;
    }
  }
  // Tracing covers the whole session: every statement becomes one
  // sql.statement span tree in the exported Chrome trace.
  if (!trace_path.empty()) trace::Enable();

  std::FILE* profile_out = nullptr;
  if (!profile_path.empty()) {
    profile_out = std::fopen(profile_path.c_str(), "w");
    if (profile_out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   profile_path.c_str());
      return 2;
    }
  }

  sql::Catalog catalog;
  sql::SqlSession session(&catalog, options);
  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::printf("ovcsql -- offset-value coding SQL shell (.help for help)\n");
  }

  // In script mode (stdin not a tty) any failed command makes the exit
  // code non-zero, so CI pipelines catch broken statements, not just
  // missing grep patterns.
  bool failed = false;
  std::string pending;
  std::string line;
  while (true) {
    if (interactive) {
      std::printf(pending.empty() ? "ovcsql> " : "   ...> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;

    // Strip -- comments here (not just in the lexer) so that semicolons
    // inside comments don't split statements and comment-only lines don't
    // start one.
    const size_t comment = line.find("--");
    if (comment != std::string::npos) line.erase(comment);

    bool pending_blank = true;
    for (char c : pending) {
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        pending_blank = false;
        break;
      }
    }

    // Meta commands act on a whole line, outside any pending statement.
    if (pending_blank && !line.empty() && line[0] == '.') {
      pending.clear();
      std::stringstream ss(line);
      std::string cmd;
      ss >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        PrintHelp();
      } else if (cmd == ".tables") {
        PrintTables(catalog);
      } else if (cmd == ".counters") {
        PrintCounters(*session.counters());
      } else if (cmd == ".metrics") {
        std::printf("%s", metrics::MetricRegistry::Instance()
                              .TextSnapshot()
                              .c_str());
      } else if (cmd == ".gen") {
        std::string rest;
        std::getline(ss, rest);
        if (!RunGen(&catalog, rest)) failed = true;
      } else {
        std::printf("unknown command %s (try .help)\n", cmd.c_str());
        failed = true;
      }
      continue;
    }

    pending += line;
    pending += '\n';
    // Execute every complete (';'-terminated) statement accumulated.
    size_t semi;
    while ((semi = pending.find(';')) != std::string::npos) {
      std::string statement = pending.substr(0, semi);
      pending.erase(0, semi + 1);
      bool blank = true;
      for (char c : statement) {
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r') blank = false;
      }
      if (!blank && !RunStatement(&session, &catalog, statement, profile_out)) {
        failed = true;
      }
    }
  }
  if (profile_out != nullptr) std::fclose(profile_out);
  if (!trace_path.empty()) {
    const std::string json = trace::ExportJson();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   trace_path.c_str());
      failed = true;
    } else {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   metrics_path.c_str());
      failed = true;
    } else {
      std::fprintf(f, "%s\n",
                   metrics::MetricRegistry::Instance().JsonSnapshot().c_str());
      std::fclose(f);
    }
  }
  if (metrics_text) {
    std::printf("%s",
                metrics::MetricRegistry::Instance().TextSnapshot().c_str());
  }
  return !interactive && failed ? 1 : 0;
}
