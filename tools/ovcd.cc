// ovcd: the OVC query server (docs/SERVING.md).
//
//   ./build/ovcd --gen='t(a,b) rows=1000 sorted' [--gen=...]
//                [--host=ADDR] [--port=N] [--max-queries=N]
//                [--workers-per-query=N] [--plan-cache=N]
//                [--sort-memory-rows=N] [--hash-memory-rows=N]
//                [--prefer-sort] [--rule-based] [--temp-dir=DIR]
//
// Serves the wire protocol in src/server/wire.h over TCP, thread per
// connection, until SIGINT/SIGTERM. The catalog is built from the --gen
// specs (same syntax as ovcsql's .gen; see sql/gen_spec.h) before the
// listener starts and is frozen afterwards -- that immutability is what
// the shared plan cache relies on.
//
// --port=0 (the default) binds an ephemeral port; the "listening on"
// line printed to stdout carries the real one, so scripts can do:
//   ./build/ovcd --gen='...' & then parse the port from its output.
//
// --sort-memory-rows / --hash-memory-rows are MACHINE totals: the
// admission controller divides them by --max-queries so the worst case
// (every slot busy) still fits the box. --workers-per-query is the
// exchange parallelism each admitted statement plans with.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "server/server.h"
#include "sql/catalog.h"
#include "sql/gen_spec.h"

using namespace ovc;

namespace {

// Self-pipe: the signal handler may only do async-signal-safe work, so it
// writes one byte and main() sleeps in read() until then.
int g_stop_pipe[2] = {-1, -1};

void HandleStopSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_stop_pipe[1], &byte, 1);
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: ovcd --gen=SPEC [--gen=SPEC ...] [--host=ADDR] [--port=N]\n"
      "            [--max-queries=N] [--workers-per-query=N]\n"
      "            [--plan-cache=N] [--sort-memory-rows=N]\n"
      "            [--hash-memory-rows=N] [--prefer-sort] [--rule-based]\n"
      "            [--temp-dir=DIR]\n"
      "gen spec: %s\n",
      sql::GenSpecUsage());
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  std::vector<std::string> gen_specs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--gen=", 6) == 0) {
      gen_specs.emplace_back(arg + 6);
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      options.host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--max-queries=", 14) == 0) {
      options.max_queries =
          static_cast<uint32_t>(std::strtoul(arg + 14, nullptr, 10));
    } else if (std::strncmp(arg, "--workers-per-query=", 20) == 0) {
      options.workers_per_query =
          static_cast<uint32_t>(std::strtoul(arg + 20, nullptr, 10));
    } else if (std::strncmp(arg, "--plan-cache=", 13) == 0) {
      options.plan_cache_capacity = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--sort-memory-rows=", 19) == 0) {
      options.executor.planner.sort_config.memory_rows =
          std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strncmp(arg, "--hash-memory-rows=", 19) == 0) {
      options.executor.planner.hash_memory_rows =
          std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strcmp(arg, "--prefer-sort") == 0) {
      options.executor.planner.prefer_sort_based = true;
    } else if (std::strcmp(arg, "--rule-based") == 0) {
      options.executor.planner.cost_policy = plan::CostPolicy::kRuleBased;
    } else if (std::strncmp(arg, "--temp-dir=", 11) == 0) {
      options.temp_dir = arg + 11;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (gen_specs.empty()) {
    std::fprintf(stderr, "error: a server without tables serves nothing; "
                         "pass at least one --gen=SPEC\n");
    PrintUsage();
    return 2;
  }

  sql::Catalog catalog;
  for (const std::string& spec : gen_specs) {
    const Status status = sql::RegisterGeneratedFromSpec(&catalog, spec);
    if (!status.ok()) {
      std::fprintf(stderr, "error in --gen='%s': %s\n", spec.c_str(),
                   status.ToString().c_str());
      return 2;
    }
  }

  server::Server server(&catalog, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ovcd listening on %s:%u (%zu tables, %u query slots, "
              "%u workers/query)\n",
              options.host.c_str(), static_cast<unsigned>(server.port()),
              catalog.TableNames().size(), options.max_queries,
              options.workers_per_query);
  std::fflush(stdout);

  if (::pipe(g_stop_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  char byte = 0;
  ssize_t n;
  do {
    n = ::read(g_stop_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::printf("ovcd shutting down\n");
  server.Stop();
  return 0;
}
