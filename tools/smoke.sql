-- CI smoke script for the ovcsql REPL (piped through stdin; see
-- .github/workflows/ci.yml). Exercises table generation, EXPLAIN, and a
-- few executed statements; CI greps the output for the planner shapes
-- the SQL front end is supposed to surface: an elided sort over a
-- pre-sorted coded table, a merge join, and (at --parallelism > 1) the
-- exchange-parallel shapes.
.gen lineitem(orderkey,qty,price) rows=20000 keys=1 distinct=500 seed=1
.gen orders(orderkey,custkey) rows=5000 keys=1 distinct=500 seed=2 sorted
.gen events(site,day,visitor) rows=10000 keys=3 distinct=16 seed=3 sorted
.tables

-- Pre-sorted coded table + ORDER BY on its key prefix: the sort is elided.
EXPLAIN SELECT site, day, visitor FROM events ORDER BY site, day;

-- Join with the sorted orders table as the probe: the planner sorts the
-- unsorted lineitem side once and merge joins, reusing the probe's order;
-- the aggregation streams over the join's order; the final ORDER BY is
-- elided.
EXPLAIN SELECT o.orderkey, COUNT(*) AS n, SUM(l.qty) AS total
  FROM orders o INNER JOIN lineitem l ON o.orderkey = l.orderkey
  GROUP BY o.orderkey ORDER BY o.orderkey;

-- EXPLAIN ANALYZE executes the same join + aggregation and annotates
-- every plan line with rows=est/actual, wall time, and the
-- comparison/spill counters (CI greps for the est/actual annotations).
EXPLAIN ANALYZE SELECT o.orderkey, COUNT(*) AS n, SUM(l.qty) AS total
  FROM orders o INNER JOIN lineitem l ON o.orderkey = l.orderkey
  GROUP BY o.orderkey ORDER BY o.orderkey;

-- The paper's web-analytics shape: distinct folded into the sort, count
-- streamed over the coded result.
SELECT site, COUNT(DISTINCT visitor) AS visitors
  FROM events GROUP BY site ORDER BY site LIMIT 5;

-- Set operation over two generated tables.
.gen t1(a,b) rows=5000 keys=2 distinct=64 seed=4
.gen t2(a,b) rows=5000 keys=2 distinct=64 seed=5
SELECT a, b FROM t1 INTERSECT SELECT a, b FROM t2 LIMIT 3;
.counters
