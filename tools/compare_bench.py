#!/usr/bin/env python3
"""Cross-PR benchmark regression and overhead-budget gate.

Each PR commits its benchmark aggregate as BENCH_PR<n>.json at the repo
root (written by bench/run_benches.sh). This tool keeps that trajectory
honest, deterministically -- it only reads *committed* aggregates, never
a freshly-run (noisy, CI-throttled) measurement:

 1. Regression check: the two highest-numbered committed aggregates are
    compared entry by entry on the benchmark names they share. The
    per-entry ratios are first normalized by their median (the uniform
    machine-speed shift between the two runs); an entry regresses when
    its real_time grew by more than --regression-pct (default 25%)
    beyond that shift. The gate is ENFORCED only when the median shift
    itself stays within --comparable-shift-pct (default 25%) -- i.e. the
    two aggregates plausibly came from comparable machines. When the
    trajectory hops containers (the committed history shows 1.3x-5x
    median shifts with per-entry spreads past 70% on *untouched*
    baselines like StdSortBaseline), per-entry wall-clock deltas measure
    the hardware, not the code, so the report is printed as
    informational instead of failing. The overhead-budget check below is
    immune to this: its pairs come from the same run on the same
    machine, so it is always enforced.

 2. Overhead-budget check: inside the newest aggregate, every
    instrumentation pair -- a `<base>_Bare` entry with a sibling
    `<base>_Profiled` or `<base>_Instrumented` -- must stay within
    --overhead-pct (default 2%), the observability budget documented in
    docs/OBSERVABILITY.md.

Usage:
  tools/compare_bench.py                  # auto-pick from the repo root
  tools/compare_bench.py NEW.json OLD.json
  tools/compare_bench.py --regression-pct 25 --overhead-pct 2

Exit status 0 when every check passes, 1 otherwise. Wired into
.github/workflows/ci.yml after the build step.
"""

import argparse
import json
import os
import re
import sys


def find_committed_aggregates(root):
    """Returns [(n, path)] for BENCH_PR<n>.json files, sorted by n."""
    found = []
    for name in os.listdir(root):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", name)
        if m:
            found.append((int(m.group(1)), os.path.join(root, name)))
    return sorted(found)


_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_entries(path):
    """Returns {benchmark name: real_time in ns} (suites mix ms/ns units)."""
    with open(path) as f:
        data = json.load(f)
    entries = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if a run ever emits them.
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        if unit not in _UNIT_NS:
            sys.exit(f"error: {path}: unknown time unit {unit!r}")
        entries[b["name"]] = float(b["real_time"]) * _UNIT_NS[unit]
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("aggregates", nargs="*",
                        help="NEW.json OLD.json (default: two newest "
                             "BENCH_PR<n>.json in the repo root)")
    parser.add_argument("--regression-pct", type=float, default=25.0)
    parser.add_argument("--overhead-pct", type=float, default=2.0)
    parser.add_argument("--comparable-shift-pct", type=float, default=25.0,
                        help="enforce the regression gate only when the "
                             "median machine shift stays within this")
    args = parser.parse_args()

    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    if len(args.aggregates) == 2:
        new_path, old_path = args.aggregates
    elif not args.aggregates:
        committed = find_committed_aggregates(root)
        if len(committed) < 2:
            print("nothing to compare: fewer than two committed aggregates")
            return 0
        old_path, new_path = committed[-2][1], committed[-1][1]
    else:
        parser.error("pass exactly two aggregates, or none for auto-pick")

    new = load_entries(new_path)
    old = load_entries(old_path)
    failures = []

    # --- 1. cross-PR regressions on shared entries -------------------------
    shared = sorted(n for n in set(new) & set(old) if old[n] > 0)
    ratios = sorted(new[n] / old[n] for n in shared)
    machine_shift = ratios[len(ratios) // 2] if ratios else 1.0
    comparable = (abs(machine_shift - 1.0) * 100.0
                  <= args.comparable_shift_pct)
    worst = (0.0, None)
    regressions = []
    for name in shared:
        delta_pct = (new[name] / old[name] / machine_shift - 1.0) * 100.0
        if delta_pct > worst[0]:
            worst = (delta_pct, name)
        if delta_pct > args.regression_pct:
            regressions.append(
                f"regression: {name}: {old[name]:.0f}ns -> {new[name]:.0f}ns "
                f"(+{delta_pct:.1f}% beyond the {machine_shift:.2f}x median "
                f"shift, budget {args.regression_pct:.0f}%)")
    print(f"compared {len(shared)} shared entries: "
          f"{os.path.basename(old_path)} -> {os.path.basename(new_path)}, "
          f"median machine shift {machine_shift:.2f}x"
          + (f", worst +{worst[0]:.1f}% on {worst[1]}" if worst[1] else ""))
    if comparable:
        failures.extend(regressions)
    else:
        print(f"note: {machine_shift:.2f}x median shift exceeds "
              f"{args.comparable_shift_pct:.0f}% -- different machine, "
              f"regression gate informational only")
        for r in regressions:
            print(f"info ({r})")

    # --- 2. instrumentation-overhead budgets in the newest aggregate -------
    pairs = 0
    for name, bare_time in sorted(new.items()):
        if not name.endswith("_Bare"):
            continue
        base = name[: -len("_Bare")]
        for suffix in ("_Profiled", "_Instrumented"):
            sibling = base + suffix
            if sibling not in new or bare_time <= 0:
                continue
            pairs += 1
            overhead_pct = (new[sibling] - bare_time) / bare_time * 100.0
            status = "OK" if overhead_pct <= args.overhead_pct else "FAIL"
            print(f"overhead {status}: {sibling} vs {name}: "
                  f"{overhead_pct:+.2f}% (budget {args.overhead_pct:.0f}%)")
            if overhead_pct > args.overhead_pct:
                failures.append(
                    f"overhead: {sibling}: {overhead_pct:+.2f}% over "
                    f"{name} exceeds {args.overhead_pct:.0f}% budget")
    if pairs == 0:
        failures.append("no _Bare/_Profiled|_Instrumented pairs found in "
                        + os.path.basename(new_path))

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
