#!/usr/bin/env bash
# Verifies that the documentation cannot drift from the implementation:
#
#  1. Every ```ovcsql [flags]``` / ```plan``` fence pair in docs/*.md and
#     README.md is replayed through the real ovcsql binary (with the
#     flags from the fence info string) and the output -- minus the
#     ".gen" confirmation lines -- must match the ```plan``` block byte
#     for byte. EXPLAIN output is deterministic (plan shapes and cost
#     estimates depend only on declared statistics, not data), so any
#     mismatch means the docs or the planner changed.
#  2. Every relative markdown link [text](path) in those files must
#     resolve to an existing file.
#
# Usage: tools/check_docs.sh [-B build_dir]     (default build dir: build)
#
# Wired into .github/workflows/ci.yml after the build step.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    -B) BUILD_DIR=$2; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

OVCSQL="$BUILD_DIR/ovcsql"
if [[ ! -x "$OVCSQL" ]]; then
  echo "error: $OVCSQL not built (run: cmake --build $BUILD_DIR --target ovcsql)" >&2
  exit 2
fi

OVCSQL="$OVCSQL" python3 - <<'PYEOF'
import os
import re
import subprocess
import sys

ovcsql = os.environ["OVCSQL"]
files = ["README.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md")
)

failures = 0
snippets = 0
links = 0

def fail(msg):
    global failures
    failures += 1
    print(f"FAIL: {msg}")

fence = re.compile(r"^```(\S*)(.*)$")

# EXPLAIN ANALYZE lines carry wall-clock times (time=..ms, wall=..ms) and
# `.metrics` histogram lines carry microsecond latencies (sum=..us,
# p50=..us) that differ run to run; normalize them on both sides so the
# docs can embed real output and everything else still matches byte for
# byte.
def normalize(line):
    line = re.sub(r"\d[\d.]*ms", "?ms", line)
    return re.sub(r"\d[\d.]*us", "?us", line)

for path in files:
    with open(path) as f:
        lines = f.read().splitlines()

    # --- extract fenced blocks (language, info, body, line number) ---
    blocks = []
    i = 0
    while i < len(lines):
        m = fence.match(lines[i])
        if m and m.group(1):
            lang, info = m.group(1), m.group(2).strip()
            body, start = [], i + 1
            i += 1
            while i < len(lines) and lines[i] != "```":
                body.append(lines[i])
                i += 1
            blocks.append((lang, info, body, start))
        i += 1

    # --- replay ovcsql/plan pairs ---
    for idx, (lang, info, body, lineno) in enumerate(blocks):
        if lang != "ovcsql":
            continue
        if idx + 1 >= len(blocks) or blocks[idx + 1][0] != "plan":
            fail(f"{path}:{lineno}: ovcsql block without a following ```plan``` block")
            continue
        expected = blocks[idx + 1][2]
        args = info.split() if info else []
        script = "\n".join(body) + "\n"
        proc = subprocess.run(
            [ovcsql] + args, input=script, capture_output=True, text=True
        )
        got = [
            normalize(line)
            for line in proc.stdout.splitlines()
            if not line.startswith("table ")  # .gen confirmations
        ]
        expected = [normalize(line) for line in expected]
        snippets += 1
        if proc.returncode != 0:
            fail(f"{path}:{lineno}: ovcsql exited {proc.returncode}\n{proc.stdout}{proc.stderr}")
        elif got != expected:
            fail(
                f"{path}:{lineno}: EXPLAIN snippet drifted\n"
                + "--- expected ---\n" + "\n".join(expected)
                + "\n--- got ---\n" + "\n".join(got)
            )

    # --- markdown link resolution ---
    text = "\n".join(lines)
    # strip fenced code before scanning for links
    stripped = re.sub(r"```.*?```", "", text, flags=re.S)
    for m in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", stripped):
        target = m.group(1)
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        links += 1
        if not os.path.exists(resolved):
            fail(f"{path}: broken link -> {m.group(1)}")

print(f"checked {snippets} EXPLAIN snippets and {links} links across {len(files)} files")
sys.exit(1 if failures else 0)
PYEOF
