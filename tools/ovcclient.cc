// ovcclient: command-line client for ovcd (docs/SERVING.md).
//
//   echo 'SELECT a, b FROM t ORDER BY a;' |
//       ./build/ovcclient --port=N [--host=ADDR] [--metrics[=FILE]]
//
// Reads ';'-separated statements from stdin (ovcsql syntax, including
// `--` comments) and runs each over one connection with QUERY frames,
// printing results in ovcsql's tab-separated format. --metrics fetches
// the server's process-wide metrics snapshot after the statements and
// prints it (or writes the JSON to FILE) -- the CI smoke json-validates
// that output. Exit status is non-zero when any statement failed or the
// connection died.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/client.h"

using namespace ovc;

namespace {

void PrintResult(const server::Client::Result& result) {
  if (!result.explain_text.empty()) {
    std::printf("%s", result.explain_text.c_str());
    return;
  }
  for (size_t i = 0; i < result.columns.size(); ++i) {
    std::printf(i == 0 ? "%s" : "\t%s", result.columns[i].c_str());
  }
  std::printf("\n");
  for (const std::vector<uint64_t>& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(c == 0 ? "%llu" : "\t%llu",
                  static_cast<unsigned long long>(row[c]));
    }
    std::printf("\n");
  }
  std::printf("(%llu rows)\n",
              static_cast<unsigned long long>(result.total_rows));
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool metrics_text = false;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_text = true;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      metrics_path = arg + 10;
    } else {
      std::fprintf(stderr,
                   "usage: ovcclient --port=N [--host=ADDR] "
                   "[--metrics[=FILE]] < statements.sql\n");
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "error: --port=N is required\n");
    return 2;
  }

  server::Client client;
  Status status = client.Connect(host, port);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  bool failed = false;
  std::string pending;
  std::string line;
  while (std::getline(std::cin, line)) {
    const size_t comment = line.find("--");
    if (comment != std::string::npos) line.erase(comment);
    pending += line;
    pending += '\n';
    size_t semi;
    while ((semi = pending.find(';')) != std::string::npos) {
      std::string statement = pending.substr(0, semi);
      pending.erase(0, semi + 1);
      bool blank = true;
      for (char c : statement) {
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r') blank = false;
      }
      if (blank) continue;
      server::Client::Result result;
      status = client.Query(statement, &result);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        return 1;
      }
      if (!result.ok) {
        std::fprintf(stderr, "error: %u:%u: %s\n", result.error_line,
                     result.error_column, result.error_message.c_str());
        failed = true;
        continue;
      }
      PrintResult(result);
    }
  }

  if (metrics_text || !metrics_path.empty()) {
    std::string json;
    status = client.Metrics(&json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    if (!metrics_path.empty()) {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     metrics_path.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
    if (metrics_text) std::printf("%s\n", json.c_str());
  }
  return failed ? 1 : 0;
}
